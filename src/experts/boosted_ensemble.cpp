#include "experts/boosted_ensemble.hpp"

#include <stdexcept>

#include "ckpt/io.hpp"
#include "experts/bovw.hpp"
#include "experts/ddm.hpp"
#include "experts/vgg16_like.hpp"

namespace crowdlearn::experts {

BoostedEnsemble::BoostedEnsemble(std::vector<std::unique_ptr<DdaAlgorithm>> members,
                                 gbdt::AdaBoostConfig boost_cfg)
    : members_(std::move(members)), boost_cfg_(boost_cfg) {
  if (members_.empty()) throw std::invalid_argument("BoostedEnsemble: no members");
  for (const auto& m : members_)
    if (!m) throw std::invalid_argument("BoostedEnsemble: null member");
}

BoostedEnsemble BoostedEnsemble::make_default() {
  std::vector<std::unique_ptr<DdaAlgorithm>> members;
  members.push_back(std::make_unique<Vgg16Like>());
  members.push_back(std::make_unique<BovwClassifier>());
  members.push_back(std::make_unique<DdmClassifier>());
  return BoostedEnsemble(std::move(members));
}

std::unique_ptr<DdaAlgorithm> BoostedEnsemble::clone() const {
  std::vector<std::unique_ptr<DdaAlgorithm>> members;
  members.reserve(members_.size());
  for (const auto& m : members_) members.push_back(m->clone());
  auto copy = std::make_unique<BoostedEnsemble>(std::move(members), boost_cfg_);
  copy->meta_ = meta_;
  copy->trained_ = trained_;
  copy->meta_training_ids_ = meta_training_ids_;
  return copy;
}

std::vector<double> BoostedEnsemble::stacked_features(const dataset::DisasterImage& image) {
  std::vector<double> feats;
  feats.reserve(members_.size() * dataset::kNumSeverityClasses);
  for (auto& m : members_) {
    const std::vector<double> p = m->predict_proba(image);
    feats.insert(feats.end(), p.begin(), p.end());
  }
  return feats;
}

void BoostedEnsemble::fit_meta(const dataset::Dataset& data,
                               const std::vector<std::size_t>& image_ids) {
  std::vector<std::vector<double>> rows;
  rows.reserve(image_ids.size());
  for (std::size_t id : image_ids) rows.push_back(stacked_features(data.image(id)));
  meta_.fit(gbdt::FeatureMatrix::from_rows(rows), data.labels(image_ids),
            dataset::kNumSeverityClasses, boost_cfg_);
}

void BoostedEnsemble::train(const dataset::Dataset& data,
                            const std::vector<std::size_t>& image_ids, Rng& rng) {
  // Members that arrive pre-trained (cloned from another run) are reused;
  // only the boosted aggregation is refit in that case.
  for (auto& m : members_) {
    if (m->is_trained()) continue;
    Rng child = rng.fork();
    m->train(data, image_ids, child);
  }
  meta_training_ids_ = image_ids;
  fit_meta(data, image_ids);
  trained_ = true;
}

void BoostedEnsemble::retrain(const dataset::Dataset& data,
                              const std::vector<std::size_t>& image_ids,
                              const std::vector<std::size_t>& crowd_labels, Rng& rng) {
  if (!trained_) throw std::logic_error("BoostedEnsemble::retrain before train");
  for (auto& m : members_) {
    Rng child = rng.fork();
    m->retrain(data, image_ids, crowd_labels, child);
  }
  // The members have shifted, so the boosted aggregation — fit on their old
  // probability outputs — must be recalibrated on the golden training set.
  if (!meta_training_ids_.empty()) fit_meta(data, meta_training_ids_);
}

std::vector<double> BoostedEnsemble::predict_proba(const dataset::DisasterImage& image) {
  if (!trained_) throw std::logic_error("BoostedEnsemble::predict before train");
  return meta_.predict_proba(stacked_features(image));
}

namespace {
constexpr char kEnsembleTag[4] = {'E', 'N', 'S', '1'};
}

void BoostedEnsemble::save_state(ckpt::Writer& w) const {
  w.begin_section(kEnsembleTag);
  w.u8(trained_ ? 1 : 0);
  w.u64(members_.size());
  for (const auto& m : members_) m->save_state(w);
  meta_.save_state(w);
  w.vec_sizes(meta_training_ids_);
}

void BoostedEnsemble::load_state(ckpt::Reader& r) {
  r.expect_section(kEnsembleTag);
  const bool trained = r.u8() != 0;
  const std::uint64_t count = r.u64();
  if (count != members_.size()) {
    throw ckpt::CkptError(ckpt::CkptErrc::kMalformed,
                          "BoostedEnsemble member count mismatch");
  }
  for (auto& m : members_) m->load_state(r);
  meta_.load_state(r);
  meta_training_ids_ = r.vec_sizes();
  trained_ = trained;
}

}  // namespace crowdlearn::experts
