#pragma once
// The black-box DDA expert interface (paper Definitions 5-6). Every expert
// consumes a DisasterImage and emits a probability distribution over the
// three severity classes — its "expert vote". The system interacts with
// experts only through this interface, mirroring the black-box assumption.

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "dataset/generator.hpp"
#include "nn/sequential.hpp"

namespace crowdlearn::ckpt {
class Writer;
class Reader;
class Hasher128;
struct Digest128;
}

namespace crowdlearn::cache {
class ArtifactCache;
}

namespace crowdlearn::util {
class ThreadPool;
}

namespace crowdlearn::experts {

class DdaAlgorithm {
 public:
  virtual ~DdaAlgorithm() = default;

  /// Train from scratch on the golden labels of the given images.
  virtual void train(const dataset::Dataset& data, const std::vector<std::size_t>& image_ids,
                     Rng& rng) = 0;

  /// Incremental fine-tuning on crowd-provided labels (which may disagree
  /// with the golden labels) — MIC's model-retraining strategy.
  virtual void retrain(const dataset::Dataset& data, const std::vector<std::size_t>& image_ids,
                       const std::vector<std::size_t>& crowd_labels, Rng& rng) = 0;

  /// Expert vote: probability distribution over severity classes.
  virtual std::vector<double> predict_proba(const dataset::DisasterImage& image) = 0;

  virtual std::string name() const = 0;

  /// Deep copy, including trained parameters. Cloning a trained expert lets
  /// callers reuse one expensive training run across schemes/sweep points
  /// while keeping each copy independently retrainable.
  virtual std::unique_ptr<DdaAlgorithm> clone() const = 0;

  /// Whether train() has completed on this instance.
  virtual bool is_trained() const = 0;

  /// Attach a thread pool the expert's internal kernels may chunk work over
  /// (nullptr = serial). The default is a no-op — non-neural experts have no
  /// parallel kernels. The pool must outlive the expert's use of it; outputs
  /// are byte-identical at any thread count (util::ThreadPool contract).
  virtual void set_thread_pool(util::ThreadPool* /*pool*/) {}

  /// Checkpoint hooks (src/ckpt): persist / restore the expert's full
  /// mutable state (trained parameters AND retrain bookkeeping — unlike the
  /// neural save_model/load_model pair, which drops the golden replay set).
  /// The base implementations throw std::logic_error; every expert the
  /// system checkpoints must override both.
  virtual void save_state(ckpt::Writer& w) const;
  virtual void load_state(ckpt::Reader& r);

  /// Cache identity (src/cache, docs/CACHING.md). An expert that returns
  /// true from cacheable() promises that its (re)train step is a pure
  /// function of (spec, checkpoint state, data, labels, RNG stream): two
  /// instances with equal name, equal hash_spec folds and equal save_state
  /// bytes produce bit-identical post-states from identical inputs.
  /// hash_spec must fold every knob that parameterizes train()/retrain()
  /// beyond the mutable state — hyperparameters, architecture sizes,
  /// encoder identity. The default is uncacheable: an expert the cache does
  /// not understand is always recomputed, never wrongly deduplicated.
  virtual bool cacheable() const { return false; }
  virtual void hash_spec(ckpt::Hasher128& h) const;

  /// save_state/load_state as a raw byte payload (no container framing) —
  /// the artifact image the cache keys and stores.
  std::string state_payload() const;
  void load_state_payload(const std::string& payload);

  /// Argmax of predict_proba.
  std::size_t predict(const dataset::DisasterImage& image);

  /// Batch helpers.
  std::vector<std::vector<double>> predict_proba_batch(const dataset::Dataset& data,
                                                       const std::vector<std::size_t>& ids);
  std::vector<std::size_t> predict_batch(const dataset::Dataset& data,
                                         const std::vector<std::size_t>& ids);
  double accuracy(const dataset::Dataset& data, const std::vector<std::size_t>& ids);
};

/// Shared implementation for neural-network experts: owns a Sequential
/// model, an input-encoding hook, and the train/retrain plumbing.
class NeuralDdaAlgorithm : public DdaAlgorithm {
 public:
  void train(const dataset::Dataset& data, const std::vector<std::size_t>& image_ids,
             Rng& rng) override;
  void retrain(const dataset::Dataset& data, const std::vector<std::size_t>& image_ids,
               const std::vector<std::size_t>& crowd_labels, Rng& rng) override;
  std::vector<double> predict_proba(const dataset::DisasterImage& image) override;

  bool trained() const { return trained_; }
  bool is_trained() const override { return trained_; }
  nn::Sequential& model() { return model_; }

  /// Forward the pool to the owned Sequential. Re-applied whenever the
  /// model is rebuilt (train / load_model / load_state), and intentionally
  /// NOT copied by copy_neural_state — each clone wires its own pool.
  void set_thread_pool(util::ThreadPool* pool) override;

  /// Persist / restore the trained network (see nn/serialize.hpp). Loading
  /// marks the expert trained; the golden replay set is not persisted, so a
  /// loaded expert retrains on crowd labels alone unless train() ran first.
  void save_model(std::ostream& os) const;
  void load_model(std::istream& is);

  /// Checkpoint hooks: the network plus the retrain bookkeeping
  /// (base_training_ids_, replay rate), so a restored expert replays golden
  /// samples exactly like the saved one. load_state validates the stored
  /// expert name against name() and throws ckpt::CkptError(kMalformed) on
  /// mismatch (a reordered roster must fail loudly, not load the wrong net).
  void save_state(ckpt::Writer& w) const override;
  void load_state(ckpt::Reader& r) override;

 protected:
  /// Build the (untrained) network. Called once at the start of train().
  virtual nn::Sequential build_model(Rng& rng) = 0;
  /// Encode one image into the model's input row.
  virtual std::vector<double> encode(const dataset::DisasterImage& image) const = 0;
  /// Training-time augmentation: all encoded variants of one image (the
  /// default is just the identity encoding). Pixel experts override this
  /// with flips — with only 560 golden images, augmentation is what keeps
  /// the CNNs from memorizing background texture.
  virtual std::vector<std::vector<double>> encode_augmented(
      const dataset::DisasterImage& image) const {
    return {encode(image)};
  }
  /// Training hyperparameters for the initial fit.
  virtual nn::TrainConfig train_config() const = 0;
  /// Hyperparameters for incremental retraining (defaults to a few epochs
  /// at a reduced learning rate).
  virtual nn::TrainConfig retrain_config() const;

  nn::Matrix encode_batch(const dataset::Dataset& data,
                          const std::vector<std::size_t>& ids) const;

  /// Fold the shared neural knobs (train/retrain hyperparameters, replay
  /// rate) into a cache key; concrete experts call this from hash_spec()
  /// and add their architecture sizes on top.
  void hash_neural_spec(ckpt::Hasher128& h) const;

  /// Copy the trained model and bookkeeping from another instance (used by
  /// the concrete experts' clone() implementations).
  void copy_neural_state(const NeuralDdaAlgorithm& src);

  /// Hook invoked after load_model() replaces the network (e.g. DDM relocates
  /// its Grad-CAM layer index).
  virtual void on_model_loaded() {}

  nn::Sequential model_;
  util::ThreadPool* pool_ = nullptr;
  bool trained_ = false;
  /// Golden training set remembered for replay during retrain(): fine-tuning
  /// on a handful of (possibly noisy) crowd labels alone would catastrophically
  /// forget the base task, so each retrain mixes in replayed golden samples.
  std::vector<std::size_t> base_training_ids_;
  std::size_t replay_per_new_label_ = 8;
};

/// Fold an nn::TrainConfig into a cache key, field by field.
void hash_train_config(ckpt::Hasher128& h, const nn::TrainConfig& cfg);

/// One expert's (re)train step through the artifact cache (docs/CACHING.md).
/// `compute` must run the actual step on `expert` consuming `child`; the
/// cache key covers (schema_tag, expert name + spec, dataset digest, image
/// ids, labels, the child RNG's stream position, and — when the expert is
/// already trained — its full pre-step checkpoint state). On a miss,
/// `compute` runs and the post-step state + post-step RNG stream are stored;
/// on a hit both are restored, so a hit is bit-identical to recompute. With
/// a null cache or an uncacheable expert this is exactly `compute()`.
void cached_expert_step(cache::ArtifactCache* cache, const char* schema_tag,
                        DdaAlgorithm& expert, const ckpt::Digest128& data_digest,
                        const std::vector<std::size_t>& image_ids,
                        const std::vector<std::size_t>& labels, Rng& child,
                        const std::function<void()>& compute);

}  // namespace crowdlearn::experts
