#pragma once
// DDM expert (paper baseline [5], Li et al. 2018): a CNN classifier combined
// with Gradient-weighted Class Activation Mapping (Grad-CAM). The heatmap
// localizes the damage evidence; its spatial extent can be blended into the
// severity decision. Grad-CAM is computed exactly: the class score is
// backpropagated to the last convolutional layer, channel importances are
// the spatially-averaged gradients, and the map is the rectified
// importance-weighted sum of activations.

#include "experts/dda_algorithm.hpp"
#include "nn/conv.hpp"

namespace crowdlearn::experts {

struct DdmConfig {
  std::size_t conv1_channels = 12;
  std::size_t conv2_channels = 24;
  std::size_t hidden = 48;
  nn::TrainConfig train{.epochs = 24, .batch_size = 32, .learning_rate = 0.02,
                        .momentum = 0.9, .weight_decay = 1e-4, .shuffle = true,
                        .optimizer = nn::OptimizerKind::kSgd};
  /// Blend weight of the heatmap-extent severity prior into the final vote
  /// (0 disables the blend; the heatmap is still available for localization).
  double heatmap_blend = 0.1;
  /// Heatmap cells above this fraction of the map's peak count as activated.
  double activation_threshold = 0.3;
  double moderate_area = 0.08;  ///< activated fraction above which damage is at least moderate
  double severe_area = 0.30;    ///< activated fraction above which damage is severe
};

class DdmClassifier : public NeuralDdaAlgorithm {
 public:
  explicit DdmClassifier(DdmConfig cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "DDM"; }
  std::unique_ptr<DdaAlgorithm> clone() const override;

  /// Blend of the CNN posterior and the heatmap-extent prior.
  std::vector<double> predict_proba(const dataset::DisasterImage& image) override;

  /// Artifact-cache identity (docs/CACHING.md): architecture sizes, the
  /// heatmap-blend knobs and the shared neural hyperparameters fully
  /// determine this expert's step.
  bool cacheable() const override { return true; }
  void hash_spec(ckpt::Hasher128& h) const override;

  /// Grad-CAM damage heatmap for the given class over the last conv layer's
  /// spatial grid. Requires a trained model.
  nn::Tensor3 damage_heatmap(const dataset::DisasterImage& image, std::size_t cls);

  /// Fraction of heatmap cells above activation_threshold x peak value.
  double activated_fraction(const nn::Tensor3& heatmap) const;

 protected:
  nn::Sequential build_model(Rng& rng) override;
  void on_model_loaded() override;
  std::vector<double> encode(const dataset::DisasterImage& image) const override;
  std::vector<std::vector<double>> encode_augmented(
      const dataset::DisasterImage& image) const override;
  nn::TrainConfig train_config() const override { return cfg_.train; }

 private:
  DdmConfig cfg_;
  std::size_t conv2_index_ = 0;  ///< layer index of the Grad-CAM conv layer

  /// One-hot-ish severity prior from the activated heatmap area.
  std::vector<double> heatmap_prior(const dataset::DisasterImage& image);
};

}  // namespace crowdlearn::experts
