#pragma once
// VGG16-style expert (paper baseline [6], Nguyen et al. 2017): a deep CNN
// with small 3x3 kernels, pooling, and fully connected head, scaled down to
// the 16x16 synthetic inputs. Classifies from raw pixels, so it inherits
// the Figure-1 failure modes by construction.

#include "experts/dda_algorithm.hpp"
#include "nn/conv.hpp"

namespace crowdlearn::experts {

struct Vgg16Config {
  std::size_t conv1_channels = 8;
  std::size_t conv2_channels = 16;
  std::size_t hidden = 48;
  nn::TrainConfig train{.epochs = 12, .batch_size = 32, .learning_rate = 0.02,
                        .momentum = 0.9, .weight_decay = 1e-4, .shuffle = true};
};

class Vgg16Like : public NeuralDdaAlgorithm {
 public:
  explicit Vgg16Like(Vgg16Config cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "VGG16"; }
  std::unique_ptr<DdaAlgorithm> clone() const override;

  /// Artifact-cache identity (docs/CACHING.md): channel/hidden sizes plus
  /// the shared neural hyperparameters fully determine this expert's step.
  bool cacheable() const override { return true; }
  void hash_spec(ckpt::Hasher128& h) const override;

 protected:
  nn::Sequential build_model(Rng& rng) override;
  std::vector<double> encode(const dataset::DisasterImage& image) const override;
  std::vector<std::vector<double>> encode_augmented(
      const dataset::DisasterImage& image) const override;
  nn::TrainConfig train_config() const override { return cfg_.train; }

 private:
  Vgg16Config cfg_;
};

/// Flip-augmented pixel variants shared by the CNN experts: identity,
/// horizontal, vertical, and both flips.
std::vector<std::vector<double>> flip_augmented_pixels(const dataset::DisasterImage& image);

}  // namespace crowdlearn::experts
