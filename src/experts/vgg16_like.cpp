#include "experts/vgg16_like.hpp"

#include "ckpt/digest.hpp"

namespace crowdlearn::experts {

nn::Sequential Vgg16Like::build_model(Rng& rng) {
  using namespace nn;
  const Shape3 in{1, imaging::kImageSide, imaging::kImageSide};

  Sequential m;
  auto conv1 = std::make_unique<Conv2D>(in, cfg_.conv1_channels, 3, rng);
  const Shape3 s1 = conv1->out_shape();
  m.add(std::move(conv1));
  m.add(std::make_unique<ReLU>(s1.size()));
  auto pool1 = std::make_unique<MaxPool2D>(s1);
  const Shape3 s2 = pool1->out_shape();
  m.add(std::move(pool1));

  auto conv2 = std::make_unique<Conv2D>(s2, cfg_.conv2_channels, 3, rng);
  const Shape3 s3 = conv2->out_shape();
  m.add(std::move(conv2));
  m.add(std::make_unique<ReLU>(s3.size()));
  auto pool2 = std::make_unique<MaxPool2D>(s3);
  const Shape3 s4 = pool2->out_shape();
  m.add(std::move(pool2));

  m.add(std::make_unique<Dense>(s4.size(), cfg_.hidden, rng));
  m.add(std::make_unique<ReLU>(cfg_.hidden));
  m.add(std::make_unique<Dense>(cfg_.hidden, dataset::kNumSeverityClasses, rng));
  return m;
}

void Vgg16Like::hash_spec(ckpt::Hasher128& h) const {
  h.u64(cfg_.conv1_channels);
  h.u64(cfg_.conv2_channels);
  h.u64(cfg_.hidden);
  hash_neural_spec(h);
}

std::unique_ptr<DdaAlgorithm> Vgg16Like::clone() const {
  auto copy = std::make_unique<Vgg16Like>(cfg_);
  copy->copy_neural_state(*this);
  return copy;
}

std::vector<double> Vgg16Like::encode(const dataset::DisasterImage& image) const {
  return image.pixels.data();
}

std::vector<std::vector<double>> flip_augmented_pixels(const dataset::DisasterImage& image) {
  const nn::Tensor3 h = imaging::flip_horizontal(image.pixels);
  return {image.pixels.data(), h.data(), imaging::flip_vertical(image.pixels).data(),
          imaging::flip_vertical(h).data()};
}

std::vector<std::vector<double>> Vgg16Like::encode_augmented(
    const dataset::DisasterImage& image) const {
  return flip_augmented_pixels(image);
}

}  // namespace crowdlearn::experts
