#include "experts/ddm.hpp"

#include "ckpt/digest.hpp"

#include <algorithm>
#include <stdexcept>

#include "experts/vgg16_like.hpp"
#include "stats/distribution.hpp"

namespace crowdlearn::experts {

nn::Sequential DdmClassifier::build_model(Rng& rng) {
  using namespace nn;
  const Shape3 in{1, imaging::kImageSide, imaging::kImageSide};

  Sequential m;
  auto conv1 = std::make_unique<Conv2D>(in, cfg_.conv1_channels, 3, rng);
  const Shape3 s1 = conv1->out_shape();
  m.add(std::move(conv1));
  m.add(std::make_unique<ReLU>(s1.size()));
  auto pool1 = std::make_unique<MaxPool2D>(s1);
  const Shape3 s2 = pool1->out_shape();
  m.add(std::move(pool1));

  auto conv2 = std::make_unique<Conv2D>(s2, cfg_.conv2_channels, 3, rng);
  const Shape3 s3 = conv2->out_shape();
  conv2_index_ = m.num_layers();
  m.add(std::move(conv2));
  m.add(std::make_unique<ReLU>(s3.size()));
  auto pool2 = std::make_unique<MaxPool2D>(s3);
  const Shape3 s4 = pool2->out_shape();
  m.add(std::move(pool2));

  m.add(std::make_unique<Dense>(s4.size(), cfg_.hidden, rng));
  m.add(std::make_unique<ReLU>(cfg_.hidden));
  m.add(std::make_unique<Dense>(cfg_.hidden, dataset::kNumSeverityClasses, rng));
  return m;
}

void DdmClassifier::on_model_loaded() {
  // Grad-CAM attaches to the last convolutional layer; relocate it in the
  // freshly loaded network.
  bool found = false;
  for (std::size_t i = 0; i < model_.num_layers(); ++i) {
    if (dynamic_cast<nn::Conv2D*>(&model_.layer(i)) != nullptr) {
      conv2_index_ = i;
      found = true;
    }
  }
  if (!found)
    throw std::runtime_error("DdmClassifier: loaded model has no convolutional layer");
}

void DdmClassifier::hash_spec(ckpt::Hasher128& h) const {
  h.u64(cfg_.conv1_channels);
  h.u64(cfg_.conv2_channels);
  h.u64(cfg_.hidden);
  h.f64(cfg_.heatmap_blend);
  h.f64(cfg_.activation_threshold);
  h.f64(cfg_.moderate_area);
  h.f64(cfg_.severe_area);
  hash_neural_spec(h);
}

std::unique_ptr<DdaAlgorithm> DdmClassifier::clone() const {
  auto copy = std::make_unique<DdmClassifier>(cfg_);
  copy->copy_neural_state(*this);
  copy->conv2_index_ = conv2_index_;
  return copy;
}

std::vector<double> DdmClassifier::encode(const dataset::DisasterImage& image) const {
  return image.pixels.data();
}

std::vector<std::vector<double>> DdmClassifier::encode_augmented(
    const dataset::DisasterImage& image) const {
  return flip_augmented_pixels(image);
}

nn::Tensor3 DdmClassifier::damage_heatmap(const dataset::DisasterImage& image,
                                          std::size_t cls) {
  if (!trained()) throw std::logic_error("DdmClassifier::damage_heatmap before train");
  if (cls >= dataset::kNumSeverityClasses)
    throw std::out_of_range("DdmClassifier::damage_heatmap: bad class");

  // Forward pass to populate the layer caches for this image.
  nn::Matrix x(1, model_.input_size());
  x.set_row(0, encode(image));
  model_.forward(x, /*training=*/false);

  auto& conv = dynamic_cast<nn::Conv2D&>(model_.layer(conv2_index_));
  const nn::Tensor3 act = conv.last_activation(0);
  const auto& sh = act.shape();

  // Backpropagate the class score through every layer above conv2 to get
  // d(score_cls) / d(conv2 output).
  nn::Matrix grad(1, dataset::kNumSeverityClasses);
  grad(0, cls) = 1.0;
  for (std::size_t i = model_.num_layers(); i-- > conv2_index_ + 1;)
    grad = model_.layer(i).backward(grad);

  // This backward pass accumulated parameter gradients as a side effect;
  // clear them so a later retrain step is not corrupted.
  for (nn::Param& p : model_.params()) p.grad->fill(0.0);

  // Grad-CAM: alpha_ch = spatial mean of the gradient; map = relu(sum alpha*A).
  const std::size_t hw = sh.height * sh.width;
  std::vector<double> alpha(sh.channels, 0.0);
  for (std::size_t c = 0; c < sh.channels; ++c) {
    for (std::size_t i = 0; i < hw; ++i) alpha[c] += grad(0, c * hw + i);
    alpha[c] /= static_cast<double>(hw);
  }

  nn::Tensor3 cam(nn::Shape3{1, sh.height, sh.width});
  for (std::size_t y = 0; y < sh.height; ++y) {
    for (std::size_t xx = 0; xx < sh.width; ++xx) {
      double v = 0.0;
      for (std::size_t c = 0; c < sh.channels; ++c) v += alpha[c] * act.at(c, y, xx);
      cam.at(0, y, xx) = std::max(v, 0.0);
    }
  }
  return cam;
}

double DdmClassifier::activated_fraction(const nn::Tensor3& heatmap) const {
  const auto& data = heatmap.data();
  if (data.empty()) throw std::invalid_argument("activated_fraction: empty heatmap");
  const double peak = *std::max_element(data.begin(), data.end());
  if (peak <= 0.0) return 0.0;
  std::size_t on = 0;
  for (double v : data)
    if (v > cfg_.activation_threshold * peak) ++on;
  return static_cast<double>(on) / static_cast<double>(data.size());
}

std::vector<double> DdmClassifier::heatmap_prior(const dataset::DisasterImage& image) {
  // Measure the activated area of the "severe" Grad-CAM — the damage extent.
  const nn::Tensor3 cam =
      damage_heatmap(image, dataset::label_index(dataset::Severity::kSevere));
  const double area = activated_fraction(cam);

  std::vector<double> prior(dataset::kNumSeverityClasses, 0.1);
  if (area >= cfg_.severe_area)
    prior[dataset::label_index(dataset::Severity::kSevere)] = 0.8;
  else if (area >= cfg_.moderate_area)
    prior[dataset::label_index(dataset::Severity::kModerate)] = 0.8;
  else
    prior[dataset::label_index(dataset::Severity::kNone)] = 0.8;
  stats::normalize(prior);
  return prior;
}

std::vector<double> DdmClassifier::predict_proba(const dataset::DisasterImage& image) {
  std::vector<double> cnn = NeuralDdaAlgorithm::predict_proba(image);
  if (cfg_.heatmap_blend > 0.0) {
    const std::vector<double> prior = heatmap_prior(image);
    for (std::size_t c = 0; c < cnn.size(); ++c)
      cnn[c] = (1.0 - cfg_.heatmap_blend) * cnn[c] + cfg_.heatmap_blend * prior[c];
    stats::normalize(cnn);
  }
  return cnn;
}

}  // namespace crowdlearn::experts
