#pragma once
// Ensemble baseline (paper Section V-A): an aggregation of VGG16, BoVW and
// DDM using confidence-rated boosting [52]. Implemented as a stacked model:
// the experts' probability vectors on the training set form the feature
// space, and AdaBoost-SAMME over shallow trees learns the aggregation rule.

#include "experts/committee.hpp"
#include "gbdt/adaboost.hpp"

namespace crowdlearn::experts {

class BoostedEnsemble : public DdaAlgorithm {
 public:
  /// The ensemble owns its member experts.
  explicit BoostedEnsemble(std::vector<std::unique_ptr<DdaAlgorithm>> members,
                           gbdt::AdaBoostConfig boost_cfg = default_boost_config());

  /// Decision stumps over the members' probability outputs: shallow learners
  /// generalize better than deep trees on overconfident training-set votes.
  static gbdt::AdaBoostConfig default_boost_config() {
    gbdt::AdaBoostConfig cfg;
    cfg.num_rounds = 15;
    cfg.tree.max_depth = 1;
    cfg.tree.min_samples_leaf = 8;
    return cfg;
  }

  /// Convenience: builds the default {VGG16, BoVW, DDM} member set.
  static BoostedEnsemble make_default();

  void train(const dataset::Dataset& data, const std::vector<std::size_t>& image_ids,
             Rng& rng) override;
  void retrain(const dataset::Dataset& data, const std::vector<std::size_t>& image_ids,
               const std::vector<std::size_t>& crowd_labels, Rng& rng) override;
  std::vector<double> predict_proba(const dataset::DisasterImage& image) override;
  std::string name() const override { return "Ensemble"; }
  std::unique_ptr<DdaAlgorithm> clone() const override;
  bool is_trained() const override { return trained_; }

  std::size_t num_members() const { return members_.size(); }
  DdaAlgorithm& member(std::size_t m) { return *members_.at(m); }

  /// Checkpoint hooks (src/ckpt): member experts, the boosted meta model and
  /// the golden ids it recalibrates on after retrain().
  void save_state(ckpt::Writer& w) const override;
  void load_state(ckpt::Reader& r) override;

 private:
  std::vector<std::unique_ptr<DdaAlgorithm>> members_;
  gbdt::AdaBoostConfig boost_cfg_;
  gbdt::AdaBoostSamme meta_;
  bool trained_ = false;
  /// Golden ids the aggregation was fit on; reused to recalibrate the meta
  /// model after retrain() shifts the members.
  std::vector<std::size_t> meta_training_ids_;

  std::vector<double> stacked_features(const dataset::DisasterImage& image);
  void fit_meta(const dataset::Dataset& data, const std::vector<std::size_t>& image_ids);
};

}  // namespace crowdlearn::experts
