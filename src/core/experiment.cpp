#include "core/experiment.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/distribution.hpp"

namespace crowdlearn::core {

ExperimentSetup make_setup(const ExperimentConfig& cfg) {
  ExperimentSetup setup;
  setup.seed = cfg.seed;
  // The experiment seed governs every component: sub-config seeds are mixed
  // with it so that changing cfg.seed alone re-randomizes the whole setup,
  // while distinct sub-seeds still produce distinct realizations.
  dataset::DatasetConfig dataset_cfg = cfg.dataset;
  dataset_cfg.seed = mix_seed(cfg.seed ^ dataset_cfg.seed);
  setup.data = dataset::generate_dataset(dataset_cfg);
  setup.stream_cfg = cfg.stream;
  setup.stream_cfg.seed = mix_seed(cfg.seed ^ setup.stream_cfg.seed);
  setup.platform_cfg = cfg.platform;
  setup.platform_cfg.seed = mix_seed(cfg.seed ^ setup.platform_cfg.seed);

  // The pilot study runs against its own platform instance (the paper's
  // pilot spends training budget before the evaluation begins).
  // One worker population per experiment, shared by the pilot platform and
  // every per-scheme platform instance.
  setup.platform_cfg.population_seed = mix_seed(cfg.seed ^ 0xF09);
  crowd::PlatformConfig pilot_platform_cfg = setup.platform_cfg;
  pilot_platform_cfg.seed = mix_seed(cfg.seed ^ 0x9111);
  crowd::CrowdPlatform pilot_platform(&setup.data, pilot_platform_cfg);
  Rng pilot_rng(mix_seed(cfg.seed ^ 0x5151));
  setup.pilot = crowd::run_pilot_study(pilot_platform, setup.data, cfg.pilot, pilot_rng);
  return setup;
}

ExperimentSetup make_default_setup(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.seed = seed;
  return make_setup(cfg);
}

crowd::CrowdPlatform make_platform(const ExperimentSetup& setup, std::uint64_t run_index) {
  crowd::PlatformConfig cfg = setup.platform_cfg;
  cfg.seed = mix_seed(setup.seed ^ (0xABCD + run_index));
  return crowd::CrowdPlatform(&setup.data, cfg);
}

crowd::CrowdPlatform make_platform(const ExperimentSetup& setup, std::uint64_t run_index,
                                   const crowd::FaultInjectionConfig& faults) {
  crowd::PlatformConfig cfg = setup.platform_cfg;
  cfg.seed = mix_seed(setup.seed ^ (0xABCD + run_index));
  cfg.faults = faults;
  return crowd::CrowdPlatform(&setup.data, cfg);
}

FlattenedRun flatten_outcomes(const dataset::Dataset& data,
                              const std::vector<CycleOutcome>& outcomes) {
  FlattenedRun flat;
  for (const CycleOutcome& out : outcomes) {
    if (out.predictions.size() != out.image_ids.size() ||
        out.probabilities.size() != out.image_ids.size())
      throw std::invalid_argument("flatten_outcomes: misaligned cycle outcome");
    for (std::size_t i = 0; i < out.image_ids.size(); ++i) {
      flat.truth.push_back(dataset::label_index(data.image(out.image_ids[i]).true_label));
      flat.predictions.push_back(out.predictions[i]);
      flat.probabilities.push_back(out.probabilities[i]);
    }
  }
  return flat;
}

SchemeEvaluation evaluate_scheme(SchemeRunner& runner, const ExperimentSetup& setup,
                                 std::uint64_t run_index) {
  crowd::CrowdPlatform platform = make_platform(setup, run_index);
  dataset::SensingCycleStream stream(setup.data, setup.stream_cfg);

  runner.initialize(setup.data, &setup.pilot);
  std::vector<CycleOutcome> outcomes = runner.run_stream(setup.data, platform, stream);

  SchemeEvaluation eval;
  eval.name = runner.name();

  const FlattenedRun flat = flatten_outcomes(setup.data, outcomes);
  eval.report = stats::evaluate_classification(flat.truth, flat.predictions,
                                               dataset::kNumSeverityClasses);
  eval.macro_auc =
      stats::macro_auc(flat.probabilities, flat.truth, dataset::kNumSeverityClasses);
  eval.roc = stats::macro_average_roc(flat.probabilities, flat.truth,
                                      dataset::kNumSeverityClasses);

  // Delay reductions (Table III / Figure 8).
  std::array<std::vector<double>, dataset::kNumContexts> delays_by_context;
  double algo_sum = 0.0, crowd_sum = 0.0;
  std::size_t crowd_cycles = 0;
  for (const CycleOutcome& out : outcomes) {
    algo_sum += out.algorithm_delay_seconds;
    eval.total_spent_cents += out.spent_cents;
    if (!out.queried_ids.empty()) {
      crowd_sum += out.crowd_delay_seconds;
      ++crowd_cycles;
      delays_by_context[static_cast<std::size_t>(out.context)].push_back(
          out.crowd_delay_seconds);
    }
  }
  eval.mean_algorithm_delay_seconds = algo_sum / static_cast<double>(outcomes.size());
  eval.mean_crowd_delay_seconds =
      crowd_cycles == 0 ? 0.0 : crowd_sum / static_cast<double>(crowd_cycles);
  for (std::size_t c = 0; c < dataset::kNumContexts; ++c) {
    if (!delays_by_context[c].empty()) {
      eval.crowd_delay_by_context[c] = stats::mean(delays_by_context[c]);
      eval.crowd_delay_sd_by_context[c] = stats::stddev(delays_by_context[c]);
    }
  }

  eval.outcomes = std::move(outcomes);
  return eval;
}

double fixed_incentive_for_budget(const ExperimentSetup& setup, std::size_t queries_per_cycle,
                                  double total_budget_cents) {
  const std::size_t total_queries = setup.stream_cfg.num_cycles * queries_per_cycle;
  if (total_queries == 0)
    throw std::invalid_argument("fixed_incentive_for_budget: zero queries");
  return total_budget_cents / static_cast<double>(total_queries);
}

CrowdLearnConfig default_crowdlearn_config(const ExperimentSetup& setup,
                                           std::size_t queries_per_cycle,
                                           double total_budget_cents) {
  CrowdLearnConfig cfg;
  cfg.queries_per_cycle = queries_per_cycle;
  cfg.seed = mix_seed(setup.seed ^ 0x1234);
  cfg.qss.seed = mix_seed(setup.seed ^ 0x4321);
  cfg.ipd.total_budget_cents = total_budget_cents;
  cfg.ipd.horizon_queries =
      std::max<std::size_t>(1, setup.stream_cfg.num_cycles * queries_per_cycle);
  cfg.ipd.seed = mix_seed(setup.seed ^ 0x9876);
  return cfg;
}

}  // namespace crowdlearn::core
