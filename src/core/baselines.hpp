#pragma once
// The evaluation schemes of Section V behind one interface: AI-only experts
// (VGG16 / BoVW / DDM / Ensemble), the two hybrid human-AI baselines
// (Hybrid-Para and Hybrid-AL), and an adapter for CrowdLearn itself. Every
// scheme consumes the same sensing-cycle stream and emits CycleOutcomes, so
// the benchmark harness can treat them uniformly.

#include <memory>

#include "core/crowdlearn_system.hpp"
#include "experts/boosted_ensemble.hpp"

namespace crowdlearn::core {

class SchemeRunner {
 public:
  virtual ~SchemeRunner() = default;

  /// One-time setup (training on the golden training set; hybrid schemes may
  /// also use the pilot). `pilot` may be null for AI-only schemes.
  virtual void initialize(const dataset::Dataset& data, const crowd::PilotResult* pilot) = 0;

  virtual CycleOutcome run_cycle(const dataset::Dataset& data, crowd::CrowdPlatform& platform,
                                 const dataset::SensingCycle& cycle) = 0;

  virtual std::string name() const = 0;

  std::vector<CycleOutcome> run_stream(const dataset::Dataset& data,
                                       crowd::CrowdPlatform& platform,
                                       const dataset::SensingCycleStream& stream);
};

/// Pure-AI scheme: one expert labels everything; no crowd involvement.
class AiOnlyRunner : public SchemeRunner {
 public:
  explicit AiOnlyRunner(std::unique_ptr<experts::DdaAlgorithm> algorithm);

  void initialize(const dataset::Dataset& data, const crowd::PilotResult* pilot) override;
  CycleOutcome run_cycle(const dataset::Dataset& data, crowd::CrowdPlatform& platform,
                         const dataset::SensingCycle& cycle) override;
  std::string name() const override { return algorithm_->name(); }

  experts::DdaAlgorithm& algorithm() { return *algorithm_; }

 private:
  std::unique_ptr<experts::DdaAlgorithm> algorithm_;
  Rng rng_{2024};
};

struct HybridConfig {
  std::size_t queries_per_cycle = 5;
  /// Fixed incentive: total budget / number of queries ("the maximum
  /// incentive for each query", Section V-C-2).
  double fixed_incentive_cents = 8.0;
  std::uint64_t seed = 77;
};

/// Hybrid-Para [53]: humans and AI label independently; a per-image
/// complexity index arbitrates. Here the index compares the AI's confidence
/// (1 - normalized vote entropy) with the crowd's agreement (majority
/// fraction); the more self-consistent source wins. Random query selection,
/// fixed incentive, majority-vote quality control, no feedback into the AI.
class HybridParaRunner : public SchemeRunner {
 public:
  explicit HybridParaRunner(HybridConfig cfg);
  /// Use a caller-supplied (possibly pre-trained) ensemble as the AI side.
  HybridParaRunner(HybridConfig cfg, experts::BoostedEnsemble ai);

  void initialize(const dataset::Dataset& data, const crowd::PilotResult* pilot) override;
  CycleOutcome run_cycle(const dataset::Dataset& data, crowd::CrowdPlatform& platform,
                         const dataset::SensingCycle& cycle) override;
  std::string name() const override { return "Hybrid-Para"; }

 private:
  HybridConfig cfg_;
  experts::BoostedEnsemble ai_;
  Rng rng_;
};

/// Hybrid-AL [13]: classic crowdsourced active learning. The most uncertain
/// images are sent to the crowd at a fixed incentive; majority-voted labels
/// retrain the AI for later cycles. Predictions always come from the AI —
/// crowd labels are never used directly, so innate failure modes persist.
class HybridAlRunner : public SchemeRunner {
 public:
  explicit HybridAlRunner(HybridConfig cfg);
  /// Use a caller-supplied (possibly pre-trained) ensemble as the AI side.
  HybridAlRunner(HybridConfig cfg, experts::BoostedEnsemble ai);

  void initialize(const dataset::Dataset& data, const crowd::PilotResult* pilot) override;
  CycleOutcome run_cycle(const dataset::Dataset& data, crowd::CrowdPlatform& platform,
                         const dataset::SensingCycle& cycle) override;
  std::string name() const override { return "Hybrid-AL"; }

 private:
  HybridConfig cfg_;
  experts::BoostedEnsemble ai_;
  Rng rng_;
};

/// Adapter running the full CrowdLearn system through the same interface.
class CrowdLearnRunner : public SchemeRunner {
 public:
  explicit CrowdLearnRunner(CrowdLearnConfig cfg);
  /// Use a caller-supplied (possibly pre-trained) committee instead of the
  /// default {VGG16, BoVW, DDM}.
  CrowdLearnRunner(CrowdLearnConfig cfg, experts::ExpertCommittee committee);

  void initialize(const dataset::Dataset& data, const crowd::PilotResult* pilot) override;
  CycleOutcome run_cycle(const dataset::Dataset& data, crowd::CrowdPlatform& platform,
                         const dataset::SensingCycle& cycle) override;
  std::string name() const override { return "CrowdLearn"; }

  CrowdLearnSystem& system() { return system_; }

 private:
  CrowdLearnSystem system_;
};

}  // namespace crowdlearn::core
