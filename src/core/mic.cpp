#include "core/mic.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/distribution.hpp"

namespace crowdlearn::core {

std::vector<double> Mic::expert_losses(
    const std::vector<std::vector<std::vector<double>>>& votes,
    const std::vector<std::vector<double>>& truth_dists, std::size_t num_experts) const {
  if (votes.size() != truth_dists.size())
    throw std::invalid_argument("Mic::expert_losses: size mismatch");
  std::vector<double> losses(num_experts, 0.0);
  if (votes.empty()) return losses;

  for (std::size_t i = 0; i < votes.size(); ++i) {
    if (votes[i].size() != num_experts)
      throw std::invalid_argument("Mic::expert_losses: expert count mismatch");
    for (std::size_t m = 0; m < num_experts; ++m) {
      const double d = stats::symmetric_kl(votes[i][m], truth_dists[i]);
      losses[m] += stats::squash_divergence(d);
    }
  }
  for (double& l : losses) l /= static_cast<double>(votes.size());
  return losses;
}

std::vector<double> Mic::updated_weights(const std::vector<double>& current,
                                         const std::vector<double>& losses) const {
  if (current.size() != losses.size())
    throw std::invalid_argument("Mic::updated_weights: size mismatch");
  std::vector<double> w(current.size());
  for (std::size_t m = 0; m < w.size(); ++m)
    w[m] = current[m] * std::exp(-cfg_.eta * losses[m]);
  stats::normalize(w);
  return w;
}

std::vector<double> Mic::update_committee_weights(
    experts::ExpertCommittee& committee,
    const std::vector<std::vector<std::vector<double>>>& votes,
    const std::vector<std::vector<double>>& truth_dists) const {
  const std::vector<double> losses = expert_losses(votes, truth_dists, committee.size());
  if (cfg_.enable_weight_update && !votes.empty()) {
    if (committee.num_quarantined() == 0) {
      committee.set_weights(updated_weights(committee.weights(), losses));
    } else {
      // Quarantined experts' losses come from sanitized placeholder votes,
      // not real predictions — freeze their weights and apply Hedge to the
      // healthy experts only (set_weights renormalizes the full vector).
      std::vector<double> w = committee.weights();
      for (std::size_t m = 0; m < w.size(); ++m)
        if (!committee.is_quarantined(m)) w[m] *= std::exp(-cfg_.eta * losses[m]);
      committee.set_weights(std::move(w));
    }
  }
  return losses;
}

void Mic::retrain(experts::ExpertCommittee& committee, const dataset::Dataset& data,
                  const std::vector<std::size_t>& queried_ids,
                  const std::vector<std::size_t>& truth_labels, Rng& rng) const {
  if (!cfg_.enable_retraining || queried_ids.empty()) return;
  committee.retrain_all(data, queried_ids, truth_labels, rng);
}

void Mic::retrain(experts::ExpertCommittee& committee, const dataset::Dataset& data,
                  const std::vector<std::size_t>& queried_ids,
                  const std::vector<std::size_t>& truth_labels, Rng& rng,
                  cache::ArtifactCache* cache, const ckpt::Digest128& data_digest) const {
  if (!cfg_.enable_retraining || queried_ids.empty()) return;
  committee.retrain_all(data, queried_ids, truth_labels, rng, cache, data_digest);
}

}  // namespace crowdlearn::core
