#pragma once
// Experiment recording: flatten scheme evaluations into CSV files so runs
// can be archived and re-plotted without re-executing them. Artifacts:
//   - a per-cycle log (one row per sensing cycle: context, delays, spend,
//     per-cycle accuracy, expert weights);
//   - a summary table (one row per scheme: the Table II/III columns);
//   - observability dumps (Prometheus text / JSON metric snapshots and a
//     Chrome trace_event JSON) for a run with observability enabled.

#include <iosfwd>
#include <string>

#include "core/experiment.hpp"
#include "obs/observability.hpp"

namespace crowdlearn::core {

/// Write one scheme's per-cycle log as CSV. Columns:
/// cycle,context,images,queried,accuracy,crowd_delay_s,algorithm_delay_s,
/// spent_cents,mean_incentive_cents,w_expert0..w_expertN
void write_cycle_log(const dataset::Dataset& data, const SchemeEvaluation& eval,
                     std::ostream& os);

/// Write a summary CSV over several scheme evaluations (one row each).
/// Columns: scheme,accuracy,precision,recall,f1,macro_auc,
/// mean_algorithm_delay_s,mean_crowd_delay_s,total_spent_cents
void write_summary(const std::vector<SchemeEvaluation>& evals, std::ostream& os);

/// File conveniences; throw std::runtime_error on unwritable paths.
void write_cycle_log_file(const dataset::Dataset& data, const SchemeEvaluation& eval,
                          const std::string& path);
void write_summary_file(const std::vector<SchemeEvaluation>& evals, const std::string& path);

/// Observability dumps. Each throws std::invalid_argument when `o` is null
/// (the caller never enabled observability) and std::runtime_error on
/// unwritable paths. Text format is Prometheus exposition; JSON mirrors the
/// registry snapshot; the trace is Chrome trace_event JSON for Perfetto.
void write_metrics_text(const obs::Observability* o, std::ostream& os);
void write_metrics_json(const obs::Observability* o, std::ostream& os);
void write_metrics_text_file(const obs::Observability* o, const std::string& path);
void write_metrics_json_file(const obs::Observability* o, const std::string& path);
void write_trace_file(const obs::Observability* o, const std::string& path);

}  // namespace crowdlearn::core
