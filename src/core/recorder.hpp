#pragma once
// Experiment recording: flatten scheme evaluations into CSV files so runs
// can be archived and re-plotted without re-executing them. Artifacts:
//   - a per-cycle log (one row per sensing cycle: context, delays, spend,
//     per-cycle accuracy, expert weights);
//   - a summary table (one row per scheme: the Table II/III columns);
//   - observability dumps (Prometheus text / JSON metric snapshots and a
//     Chrome trace_event JSON) for a run with observability enabled.

#include <iosfwd>
#include <string>

#include "core/experiment.hpp"
#include "obs/observability.hpp"

namespace crowdlearn::core {

/// Knobs for the per-cycle CSV log.
struct CycleLogOptions {
  /// Emit the algorithm_delay_s column. It is the one wall-clock-derived
  /// column, so deterministic comparisons (golden traces, checkpoint resume
  /// equivalence) set this false; everything else in the log is a pure
  /// function of the simulated run.
  bool include_wall_clock = true;
  /// Emit the header row. False when appending the resumed half of a
  /// checkpointed run to an existing log so the concatenation is one valid
  /// CSV file (docs/CHECKPOINTING.md).
  bool include_header = true;
};

/// Write one scheme's per-cycle log as CSV. Columns:
/// cycle,context,images,queried,accuracy,crowd_delay_s,algorithm_delay_s,
/// spent_cents,mean_incentive_cents,retries,partial_queries,failed_queries,
/// fallbacks,w_expert0..w_expertN
void write_cycle_log(const dataset::Dataset& data, const SchemeEvaluation& eval,
                     std::ostream& os);

/// Same log from raw cycle outcomes (what run_stream returns), without
/// requiring a full SchemeEvaluation wrapper.
void write_cycle_log(const dataset::Dataset& data,
                     const std::vector<CycleOutcome>& outcomes, std::ostream& os,
                     const CycleLogOptions& opts = {});

/// Write a summary CSV over several scheme evaluations (one row each).
/// Columns: scheme,accuracy,precision,recall,f1,macro_auc,
/// mean_algorithm_delay_s,mean_crowd_delay_s,total_spent_cents
void write_summary(const std::vector<SchemeEvaluation>& evals, std::ostream& os);

/// File conveniences; throw std::runtime_error on unwritable paths.
void write_cycle_log_file(const dataset::Dataset& data, const SchemeEvaluation& eval,
                          const std::string& path);
void write_summary_file(const std::vector<SchemeEvaluation>& evals, const std::string& path);

/// Observability dumps. Each throws std::invalid_argument when `o` is null
/// (the caller never enabled observability) and std::runtime_error on
/// unwritable paths. Text format is Prometheus exposition; JSON mirrors the
/// registry snapshot; the trace is Chrome trace_event JSON for Perfetto.
void write_metrics_text(const obs::Observability* o, std::ostream& os);
void write_metrics_json(const obs::Observability* o, std::ostream& os);
void write_metrics_text_file(const obs::Observability* o, const std::string& path);
void write_metrics_json_file(const obs::Observability* o, const std::string& path);
void write_trace_file(const obs::Observability* o, const std::string& path);

/// True for series that measure host wall-clock time (histograms named
/// `*_seconds`), EXCEPT the simulated crowd-delay series (`*_delay_seconds`),
/// which are a deterministic function of the run.
bool is_wall_clock_metric(const obs::MetricSample& sample);

/// True for series that describe host execution rather than the simulated
/// run: wall-clock series, thread-pool scheduling series
/// (`crowdlearn_pool_*`, values scale with num_threads) and recovery
/// series (`crowdlearn_recovery_*`, values depend on which faults fired).
bool is_host_execution_metric(const obs::MetricSample& sample);

/// Metrics JSON with every host-execution series dropped, so two runs with
/// equal simulated state produce byte-identical output — at any thread count
/// — the comparison format for golden traces and checkpoint-resume
/// equivalence (docs/CHECKPOINTING.md).
void write_metrics_json_deterministic(const obs::Observability* o, std::ostream& os);
void write_metrics_json_deterministic_file(const obs::Observability* o,
                                           const std::string& path);

}  // namespace crowdlearn::core
