#include "core/baselines.hpp"

#include <stdexcept>

#include "stats/distribution.hpp"
#include "truth/voting.hpp"

namespace crowdlearn::core {

std::vector<CycleOutcome> SchemeRunner::run_stream(const dataset::Dataset& data,
                                                   crowd::CrowdPlatform& platform,
                                                   const dataset::SensingCycleStream& stream) {
  std::vector<CycleOutcome> outcomes;
  outcomes.reserve(stream.num_cycles());
  for (const dataset::SensingCycle& cycle : stream.cycles())
    outcomes.push_back(run_cycle(data, platform, cycle));
  return outcomes;
}

// ---------------------------------------------------------------------------
// AiOnlyRunner
// ---------------------------------------------------------------------------

AiOnlyRunner::AiOnlyRunner(std::unique_ptr<experts::DdaAlgorithm> algorithm)
    : algorithm_(std::move(algorithm)) {
  if (!algorithm_) throw std::invalid_argument("AiOnlyRunner: null algorithm");
}

void AiOnlyRunner::initialize(const dataset::Dataset& data,
                              const crowd::PilotResult* /*pilot*/) {
  if (algorithm_->is_trained()) return;  // arrived pre-trained (cloned)
  algorithm_->train(data, data.train_indices, rng_);
}

CycleOutcome AiOnlyRunner::run_cycle(const dataset::Dataset& data,
                                     crowd::CrowdPlatform& /*platform*/,
                                     const dataset::SensingCycle& cycle) {
  CycleOutcome out;
  out.cycle_index = cycle.index;
  out.context = cycle.context;
  out.image_ids = cycle.image_ids;

  Stopwatch clock;
  for (std::size_t id : cycle.image_ids) {
    std::vector<double> p = algorithm_->predict_proba(data.image(id));
    out.predictions.push_back(stats::argmax(p));
    out.probabilities.push_back(std::move(p));
  }
  out.algorithm_delay_seconds = clock.elapsed_seconds();
  return out;
}

// ---------------------------------------------------------------------------
// Hybrid helpers
// ---------------------------------------------------------------------------

namespace {

/// Crowd agreement of one response set: majority vote fraction.
double crowd_agreement(const std::vector<double>& vote_dist) {
  double best = 0.0;
  for (double v : vote_dist) best = std::max(best, v);
  return best;
}

/// AI confidence: 1 - normalized entropy of the probability vector.
double ai_confidence(const std::vector<double>& probs) {
  return 1.0 - stats::entropy(probs) / stats::max_entropy(probs.size());
}

}  // namespace

// ---------------------------------------------------------------------------
// HybridParaRunner
// ---------------------------------------------------------------------------

HybridParaRunner::HybridParaRunner(HybridConfig cfg)
    : HybridParaRunner(cfg, experts::BoostedEnsemble::make_default()) {}

HybridParaRunner::HybridParaRunner(HybridConfig cfg, experts::BoostedEnsemble ai)
    : cfg_(cfg), ai_(std::move(ai)), rng_(cfg.seed) {
  if (cfg.fixed_incentive_cents <= 0.0)
    throw std::invalid_argument("HybridParaRunner: incentive must be > 0");
}

void HybridParaRunner::initialize(const dataset::Dataset& data,
                                  const crowd::PilotResult* /*pilot*/) {
  if (ai_.is_trained()) return;  // arrived pre-trained (cloned)
  Rng child = rng_.fork();
  ai_.train(data, data.train_indices, child);
}

CycleOutcome HybridParaRunner::run_cycle(const dataset::Dataset& data,
                                         crowd::CrowdPlatform& platform,
                                         const dataset::SensingCycle& cycle) {
  CycleOutcome out;
  out.cycle_index = cycle.index;
  out.context = cycle.context;
  out.image_ids = cycle.image_ids;
  const double spent_before = platform.total_spent_cents();

  Stopwatch clock;
  // AI labels everything.
  std::vector<std::vector<double>> ai_probs;
  ai_probs.reserve(cycle.image_ids.size());
  for (std::size_t id : cycle.image_ids) ai_probs.push_back(ai_.predict_proba(data.image(id)));

  // Humans label a random subset in parallel (no active selection).
  const std::size_t query_count = std::min(cfg_.queries_per_cycle, cycle.image_ids.size());
  const std::vector<std::size_t> query_positions =
      rng_.sample_without_replacement(cycle.image_ids.size(), query_count);

  double delay_sum = 0.0;
  std::vector<std::size_t> queried_pos_order;
  std::vector<std::vector<double>> crowd_dists;
  for (std::size_t pos : query_positions) {
    const std::size_t id = cycle.image_ids[pos];
    const crowd::QueryResponse resp =
        platform.post_query(id, cfg_.fixed_incentive_cents, cycle.context);
    delay_sum += resp.completion_delay_seconds;
    if (resp.answers.empty()) {  // abandoned/refused under fault injection
      ++out.failed_queries;
      continue;  // the AI probabilities already cover this image
    }
    out.queried_ids.push_back(id);
    out.incentives_cents.push_back(cfg_.fixed_incentive_cents);
    queried_pos_order.push_back(pos);
    crowd_dists.push_back(truth::MajorityVoting::vote_distribution(resp));
  }
  if (query_count > 0) out.crowd_delay_seconds = delay_sum / static_cast<double>(query_count);

  // Complexity-index integration: per queried image, the more self-consistent
  // source (crowd agreement vs AI confidence) provides the label.
  out.probabilities = ai_probs;
  for (std::size_t q = 0; q < queried_pos_order.size(); ++q) {
    const std::size_t pos = queried_pos_order[q];
    if (crowd_agreement(crowd_dists[q]) >= ai_confidence(ai_probs[pos]))
      out.probabilities[pos] = crowd_dists[q];
  }
  out.predictions.reserve(out.probabilities.size());
  for (const auto& p : out.probabilities) out.predictions.push_back(stats::argmax(p));

  out.algorithm_delay_seconds = clock.elapsed_seconds();
  out.spent_cents = platform.total_spent_cents() - spent_before;
  return out;
}

// ---------------------------------------------------------------------------
// HybridAlRunner
// ---------------------------------------------------------------------------

HybridAlRunner::HybridAlRunner(HybridConfig cfg)
    : HybridAlRunner(cfg, experts::BoostedEnsemble::make_default()) {}

HybridAlRunner::HybridAlRunner(HybridConfig cfg, experts::BoostedEnsemble ai)
    : cfg_(cfg), ai_(std::move(ai)), rng_(cfg.seed) {
  if (cfg.fixed_incentive_cents <= 0.0)
    throw std::invalid_argument("HybridAlRunner: incentive must be > 0");
}

void HybridAlRunner::initialize(const dataset::Dataset& data,
                                const crowd::PilotResult* /*pilot*/) {
  if (ai_.is_trained()) return;  // arrived pre-trained (cloned)
  Rng child = rng_.fork();
  ai_.train(data, data.train_indices, child);
}

CycleOutcome HybridAlRunner::run_cycle(const dataset::Dataset& data,
                                       crowd::CrowdPlatform& platform,
                                       const dataset::SensingCycle& cycle) {
  CycleOutcome out;
  out.cycle_index = cycle.index;
  out.context = cycle.context;
  out.image_ids = cycle.image_ids;
  const double spent_before = platform.total_spent_cents();

  Stopwatch clock;
  // Predictions come from the (incrementally retrained) AI for every image.
  std::vector<double> uncertainties;
  for (std::size_t id : cycle.image_ids) {
    std::vector<double> p = ai_.predict_proba(data.image(id));
    uncertainties.push_back(stats::entropy(p));
    out.predictions.push_back(stats::argmax(p));
    out.probabilities.push_back(std::move(p));
  }

  // Uncertainty sampling: query the top-entropy images.
  const std::size_t query_count = std::min(cfg_.queries_per_cycle, cycle.image_ids.size());
  std::vector<std::size_t> order(cycle.image_ids.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return uncertainties[a] > uncertainties[b];
  });

  double delay_sum = 0.0;
  std::vector<std::size_t> retrain_labels;
  for (std::size_t q = 0; q < query_count; ++q) {
    const std::size_t id = cycle.image_ids[order[q]];
    const crowd::QueryResponse resp =
        platform.post_query(id, cfg_.fixed_incentive_cents, cycle.context);
    delay_sum += resp.completion_delay_seconds;
    if (resp.answers.empty()) {  // abandoned/refused under fault injection
      ++out.failed_queries;
      continue;  // nothing to retrain on; the AI prediction stands
    }
    out.queried_ids.push_back(id);
    out.incentives_cents.push_back(cfg_.fixed_incentive_cents);
    retrain_labels.push_back(
        stats::argmax(truth::MajorityVoting::vote_distribution(resp)));
  }
  if (query_count > 0) out.crowd_delay_seconds = delay_sum / static_cast<double>(query_count);

  // Crowd labels are used only to retrain — never to relabel directly.
  if (!out.queried_ids.empty()) {
    Rng child = rng_.fork();
    ai_.retrain(data, out.queried_ids, retrain_labels, child);
  }

  out.algorithm_delay_seconds = clock.elapsed_seconds();
  out.spent_cents = platform.total_spent_cents() - spent_before;
  return out;
}

// ---------------------------------------------------------------------------
// CrowdLearnRunner
// ---------------------------------------------------------------------------

CrowdLearnRunner::CrowdLearnRunner(CrowdLearnConfig cfg)
    : system_(experts::make_default_committee(), cfg) {}

CrowdLearnRunner::CrowdLearnRunner(CrowdLearnConfig cfg, experts::ExpertCommittee committee)
    : system_(std::move(committee), cfg) {}

void CrowdLearnRunner::initialize(const dataset::Dataset& data,
                                  const crowd::PilotResult* pilot) {
  if (pilot == nullptr)
    throw std::invalid_argument("CrowdLearnRunner: CrowdLearn requires the pilot study");
  system_.initialize(data, *pilot);
}

CycleOutcome CrowdLearnRunner::run_cycle(const dataset::Dataset& data,
                                         crowd::CrowdPlatform& platform,
                                         const dataset::SensingCycle& cycle) {
  return system_.run_cycle(data, platform, cycle);
}

}  // namespace crowdlearn::core
