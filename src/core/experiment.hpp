#pragma once
// Shared experiment harness for the Section V evaluation: builds the default
// setup (dataset -> pilot study), runs any SchemeRunner over the sensing
// stream on a fresh platform instance, and reduces the outcomes into the
// metrics the paper's tables and figures report.

#include <array>
#include <optional>

#include "core/baselines.hpp"
#include "stats/metrics.hpp"
#include "stats/roc.hpp"

namespace crowdlearn::core {

struct ExperimentSetup {
  dataset::Dataset data;
  dataset::StreamConfig stream_cfg;
  crowd::PlatformConfig platform_cfg;
  crowd::PilotResult pilot;
  std::uint64_t seed = 42;
};

struct ExperimentConfig {
  dataset::DatasetConfig dataset;
  dataset::StreamConfig stream;
  crowd::PlatformConfig platform;
  crowd::PilotConfig pilot;
  std::uint64_t seed = 42;
};

/// Generate the dataset and run the pilot study once. All schemes share the
/// resulting setup; each gets its own platform instance (same configuration,
/// scheme-specific seed) so crowd randomness is independent but comparable.
ExperimentSetup make_setup(const ExperimentConfig& cfg);
ExperimentSetup make_default_setup(std::uint64_t seed = 42);

/// A fresh platform for one scheme run. `run_index` decorrelates the
/// randomness of repeated runs.
crowd::CrowdPlatform make_platform(const ExperimentSetup& setup, std::uint64_t run_index);

/// Same platform, but with a deployment fault profile applied on top of the
/// setup's platform config. The pilot study already ran clean inside
/// make_setup, so faults configured here only touch the live run — this is
/// the tenant-scoped construction hook the multi-tenant service uses to give
/// every tenant its own fault profile (docs/TENANCY.md).
crowd::CrowdPlatform make_platform(const ExperimentSetup& setup, std::uint64_t run_index,
                                   const crowd::FaultInjectionConfig& faults);

/// All metrics the paper reports for one scheme.
struct SchemeEvaluation {
  std::string name;
  stats::ClassificationReport report;           ///< Table II row
  double macro_auc = 0.0;                       ///< Figure 7 summary
  std::vector<stats::RocPoint> roc;             ///< Figure 7 curve
  double mean_algorithm_delay_seconds = 0.0;    ///< Table III, per cycle
  double mean_crowd_delay_seconds = 0.0;        ///< Table III, per cycle
  std::array<double, dataset::kNumContexts> crowd_delay_by_context{};      ///< Figure 8
  std::array<double, dataset::kNumContexts> crowd_delay_sd_by_context{};   ///< Figure 8 bars
  double total_spent_cents = 0.0;
  std::vector<CycleOutcome> outcomes;

  bool uses_crowd() const { return mean_crowd_delay_seconds > 0.0; }
};

/// Initialize the runner, execute the full stream and reduce the outcomes.
SchemeEvaluation evaluate_scheme(SchemeRunner& runner, const ExperimentSetup& setup,
                                 std::uint64_t run_index = 0);

/// Flattened golden labels / predictions / probabilities of a finished run,
/// aligned across all cycles (used for ROC and custom metrics).
struct FlattenedRun {
  std::vector<std::size_t> truth;
  std::vector<std::size_t> predictions;
  std::vector<std::vector<double>> probabilities;
};
FlattenedRun flatten_outcomes(const dataset::Dataset& data,
                              const std::vector<CycleOutcome>& outcomes);

/// The default CrowdLearn configuration used across benches: 5 queries per
/// 10-image cycle, $16 total budget over 200 queries (8 cents per task).
CrowdLearnConfig default_crowdlearn_config(const ExperimentSetup& setup,
                                           std::size_t queries_per_cycle = 5,
                                           double total_budget_cents = 1600.0);

/// Fixed-incentive level for the hybrid baselines: budget / total queries.
double fixed_incentive_for_budget(const ExperimentSetup& setup, std::size_t queries_per_cycle,
                                  double total_budget_cents);

}  // namespace crowdlearn::core
