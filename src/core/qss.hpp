#pragma once
// Query Set Selection (paper Algorithm 1): rank the cycle's images by
// committee entropy and build the query set epsilon-greedily — with
// probability 1-epsilon take the most uncertain remaining image, with
// probability epsilon take a uniformly random remaining one. The random
// branch is what lets the loop discover images on which the whole committee
// is confidently wrong (fakes and close-ups).

#include "experts/committee.hpp"
#include "obs/observability.hpp"
#include "util/rng.hpp"

namespace crowdlearn::ckpt {
class Writer;
class Reader;
}

namespace crowdlearn::core {

struct QssConfig {
  double epsilon = 0.2;
  std::uint64_t seed = 17;
};

/// The outcome of one selection round.
struct QssSelection {
  std::vector<std::size_t> queried_ids;    ///< sent to the crowd
  std::vector<std::size_t> remaining_ids;  ///< labeled by the committee alone
  /// Positions (indices into the cycle's image list) of the above.
  std::vector<std::size_t> queried_positions;
  std::vector<std::size_t> remaining_positions;
  /// Committee entropy per cycle image, aligned with the input order.
  std::vector<double> entropies;
  /// Expert votes cached during entropy computation:
  /// votes[i][m] = expert m's distribution for cycle image i.
  std::vector<std::vector<std::vector<double>>> votes;
};

class Qss {
 public:
  explicit Qss(const QssConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {}

  /// Select `query_count` of the cycle's images for crowd querying.
  /// Computes the expert votes itself (through the committee's thread pool
  /// when one is attached) and delegates to the precomputed-votes overload.
  QssSelection select(experts::ExpertCommittee& committee, const dataset::Dataset& data,
                      const std::vector<std::size_t>& cycle_image_ids,
                      std::size_t query_count);

  /// Select from precomputed expert votes (votes[i][m] = expert m's
  /// distribution for cycle image i) — the path run_cycle uses after batching
  /// all committee inference through the thread pool. Ranking, the epsilon-
  /// greedy draw and every RNG consumption happen on the calling thread in
  /// input order, so selection is independent of how the votes were computed.
  QssSelection select(const experts::ExpertCommittee& committee,
                      const std::vector<std::size_t>& cycle_image_ids,
                      std::vector<std::vector<std::vector<double>>> votes,
                      std::size_t query_count);

  double epsilon() const { return cfg_.epsilon; }

  /// Wire QSS metrics (entropy distribution, selection/exploration counts).
  /// Recording happens after every RNG draw and never feeds back into the
  /// selection, so the chosen query set is identical with metrics on or off.
  void set_observability(obs::Observability* o);

  /// Checkpoint hooks (src/ckpt): the epsilon-greedy RNG stream is QSS's
  /// only mutable state.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  QssConfig cfg_;
  Rng rng_;

  obs::Observability* obs_ = nullptr;  ///< not owned; nullptr = no metrics
  obs::Histogram* obs_entropy_ = nullptr;
  obs::Counter* obs_selections_ = nullptr;
  obs::Counter* obs_explore_picks_ = nullptr;
};

}  // namespace crowdlearn::core
