#pragma once
// Query Set Selection (paper Algorithm 1): rank the cycle's images by
// committee entropy and build the query set epsilon-greedily — with
// probability 1-epsilon take the most uncertain remaining image, with
// probability epsilon take a uniformly random remaining one. The random
// branch is what lets the loop discover images on which the whole committee
// is confidently wrong (fakes and close-ups).

#include "experts/committee.hpp"
#include "util/rng.hpp"

namespace crowdlearn::core {

struct QssConfig {
  double epsilon = 0.2;
  std::uint64_t seed = 17;
};

/// The outcome of one selection round.
struct QssSelection {
  std::vector<std::size_t> queried_ids;    ///< sent to the crowd
  std::vector<std::size_t> remaining_ids;  ///< labeled by the committee alone
  /// Positions (indices into the cycle's image list) of the above.
  std::vector<std::size_t> queried_positions;
  std::vector<std::size_t> remaining_positions;
  /// Committee entropy per cycle image, aligned with the input order.
  std::vector<double> entropies;
  /// Expert votes cached during entropy computation:
  /// votes[i][m] = expert m's distribution for cycle image i.
  std::vector<std::vector<std::vector<double>>> votes;
};

class Qss {
 public:
  explicit Qss(const QssConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {}

  /// Select `query_count` of the cycle's images for crowd querying.
  QssSelection select(experts::ExpertCommittee& committee, const dataset::Dataset& data,
                      const std::vector<std::size_t>& cycle_image_ids,
                      std::size_t query_count);

  double epsilon() const { return cfg_.epsilon; }

 private:
  QssConfig cfg_;
  Rng rng_;
};

}  // namespace crowdlearn::core
