#pragma once
// The CQC stage of the closed loop: fits the gradient-boosted aggregator on
// the gold-labeled pilot-study responses and turns each cycle's raw crowd
// answers into truthful label distributions for MIC.

#include "crowd/pilot.hpp"
#include "obs/observability.hpp"
#include "truth/cqc.hpp"

namespace crowdlearn::cache {
class ArtifactCache;
}

namespace crowdlearn::core {

class CqcModule {
 public:
  explicit CqcModule(truth::CqcConfig cfg = {}) : aggregator_(cfg) {}

  /// Fit on all pilot-study responses (their images carry golden labels).
  void fit_from_pilot(const crowd::PilotResult& pilot, const dataset::Dataset& data);

  /// Fit on explicitly labeled queries. With an artifact cache attached the
  /// fit is memoized (src/cache, docs/CACHING.md): the key digests the full
  /// CQC config plus the training corpus, and a hit restores the stored
  /// forest bit-identically to refitting (the fit consumes no external RNG
  /// stream — the GBDT seeds internally from its config).
  void fit(const std::vector<truth::LabeledQuery>& training);

  /// Attach / detach the shared artifact cache (not owned; may be null).
  void set_artifact_cache(cache::ArtifactCache* cache) { cache_ = cache; }

  /// Truthful label distribution per query response.
  std::vector<std::vector<double>> refine(const std::vector<crowd::QueryResponse>& responses);

  /// Hard truthful labels (argmax of refine()).
  std::vector<std::size_t> refine_labels(const std::vector<crowd::QueryResponse>& responses);

  bool trained() const { return aggregator_.trained(); }
  truth::CqcAggregator& aggregator() { return aggregator_; }

  /// Route GBDT training through a thread pool (nullptr = serial).
  void set_thread_pool(util::ThreadPool* pool) { aggregator_.set_thread_pool(pool); }

  /// Wire CQC metrics: refined-query count, how often the refined label
  /// agrees with raw majority voting (disagreement is where CQC earns its
  /// keep), and refine latency. Never feeds back into aggregation.
  void set_observability(obs::Observability* o);

  /// Checkpoint hooks (src/ckpt): delegate to the aggregator's trained GBT.
  void save_state(ckpt::Writer& w) const { aggregator_.save_state(w); }
  void load_state(ckpt::Reader& r) { aggregator_.load_state(r); }

  /// Collect every pilot response with its golden label — also used to fit
  /// the Table I baselines on identical data.
  static std::vector<truth::LabeledQuery> labeled_queries_from_pilot(
      const crowd::PilotResult& pilot, const dataset::Dataset& data);

 private:
  truth::CqcAggregator aggregator_;
  cache::ArtifactCache* cache_ = nullptr;  ///< not owned; nullptr = uncached

  obs::Observability* obs_ = nullptr;  ///< not owned; nullptr = no metrics
  obs::Counter* obs_refined_ = nullptr;
  obs::Counter* obs_majority_agreement_ = nullptr;
  obs::Histogram* obs_refine_seconds_ = nullptr;
};

}  // namespace crowdlearn::core
