#pragma once
// The CrowdLearn closed loop (paper Figure 4): each sensing cycle,
//   (1) QSS selects the query set from the committee's uncertainty,
//   (2) IPD assigns an incentive per query and posts them to the platform,
//   (3) CQC refines the raw crowd answers into truthful labels,
//   (4) MIC calibrates the committee — weight update, retraining, and crowd
//       offloading of the queried images' labels.

#include <functional>
#include <memory>
#include <string>

#include "core/cqc_module.hpp"
#include "core/ipd.hpp"
#include "core/mic.hpp"
#include "core/qss.hpp"
#include "crowd/broker.hpp"
#include "dataset/stream.hpp"
#include "obs/observability.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace crowdlearn::ckpt {
class Writer;
class Reader;
}

namespace crowdlearn::core {

struct CrowdLearnConfig {
  std::size_t queries_per_cycle = 5;  ///< Y in Algorithm 1 (5 of 10 images)
  QssConfig qss;
  IpdConfig ipd;
  truth::CqcConfig cqc;
  MicConfig mic;
  crowd::BrokerConfig broker;
  std::uint64_t seed = 31;
  /// Worker threads for committee inference/training and GBDT split search.
  /// 0 = auto (CROWDLEARN_THREADS env var, else hardware_concurrency).
  /// Outputs are byte-identical for any value (tests/test_determinism.cpp).
  std::size_t num_threads = 0;
  /// Metrics + tracing (docs/OBSERVABILITY.md). Off by default; when on,
  /// every module records into one registry/tracer owned by the system.
  /// Instrumentation never draws randomness or alters control flow, so
  /// outputs are byte-identical with observability on or off.
  obs::ObservabilityConfig observability;
  /// Borrow an existing worker pool instead of spawning one (multi-tenant
  /// service, docs/TENANCY.md): when set, `num_threads` is ignored and the
  /// system schedules all parallel sections on this pool. The static-chunk
  /// contract makes outputs byte-identical either way, and the pool is
  /// deliberately excluded from the checkpoint config fingerprint (like
  /// num_threads). A borrowed pool never has this system's observability
  /// attached — several tenants may share it.
  std::shared_ptr<util::ThreadPool> shared_pool;
  /// Content-addressed artifact cache memoizing expert fine-tunes and CQC
  /// fits (src/cache, docs/CACHING.md). Like shared_pool it is a process
  /// resource, may be shared across tenants, and is excluded from the
  /// checkpoint config fingerprint. A cache hit restores bit-identical model
  /// and RNG state, so outputs are byte-identical with caching on or off.
  /// Null = every retrain computes.
  std::shared_ptr<cache::ArtifactCache> artifact_cache;
};

/// Everything observable about one executed sensing cycle.
struct CycleOutcome {
  std::size_t cycle_index = 0;
  dataset::TemporalContext context = dataset::TemporalContext::kMorning;
  std::vector<std::size_t> image_ids;  ///< cycle order
  /// Final label distribution per image (offloaded CQC distribution for
  /// queried images, reweighted committee vote for the rest).
  std::vector<std::vector<double>> probabilities;
  std::vector<std::size_t> predictions;
  std::vector<std::size_t> queried_ids;
  std::vector<double> incentives_cents;
  double crowd_delay_seconds = 0.0;      ///< mean query completion delay
  double algorithm_delay_seconds = 0.0;  ///< wall-clock of the AI-side work
  double spent_cents = 0.0;
  std::vector<double> expert_losses;   ///< Eq. 5 losses this cycle
  std::vector<double> expert_weights;  ///< committee weights after MIC
  /// Robustness telemetry (all zero/empty against a fault-free platform).
  std::vector<std::size_t> fallback_ids;  ///< queried images answered by the
                                          ///< committee because the crowd failed
  std::size_t query_retries = 0;    ///< broker retries summed over the cycle
  std::size_t partial_queries = 0;  ///< resolved with fewer answers than requested
  std::size_t failed_queries = 0;   ///< no usable crowd answer at all
};

/// Named boundaries of run_cycle, in execution order (docs/RECOVERY.md).
/// The runtime Supervisor arms fault points and retries/rolls back at these
/// granularities; the names are part of the fault-site grammar
/// ("stage:<name>").
enum class CycleStage {
  kIngest = 0,  ///< cycle validated, nothing consumed yet
  kCommittee,   ///< expert inference over the cycle's images
  kQss,         ///< query-set selection
  kCrowd,       ///< IPD incentives + brokered crowd queries
  kCqc,         ///< crowd-answer refinement + MIC weight update
  kMic,         ///< final labels + committee retraining
  kRecord,      ///< outcome/metrics finalization
};
inline constexpr std::size_t kNumCycleStages = 7;
const char* cycle_stage_name(CycleStage stage);

/// Per-call knobs for run_cycle.
struct CycleRunOptions {
  /// Degraded mode (docs/RECOVERY.md): answer every image from the committee
  /// alone — no QSS query set, no crowd spend, no CQC refinement, no MIC
  /// weight update or retrain (the last trained forest and experts are
  /// reused as-is) — so a cycle still completes when the crowd-facing
  /// stages keep failing. Only the kIngest, kCommittee and kRecord stage
  /// boundaries are crossed.
  bool degraded = false;
};

class CrowdLearnSystem {
 public:
  CrowdLearnSystem(experts::ExpertCommittee committee, const CrowdLearnConfig& cfg);

  /// Train the committee on the golden training set, fit CQC on the pilot
  /// responses and warm-start the IPD bandit from the pilot delays.
  void initialize(const dataset::Dataset& data, const crowd::PilotResult& pilot);

  /// Execute one sensing cycle against the (black-box) platform.
  CycleOutcome run_cycle(const dataset::Dataset& data, crowd::CrowdPlatform& platform,
                         const dataset::SensingCycle& cycle);
  CycleOutcome run_cycle(const dataset::Dataset& data, crowd::CrowdPlatform& platform,
                         const dataset::SensingCycle& cycle, const CycleRunOptions& opts);

  /// Observer invoked at the entry of every stage boundary inside run_cycle.
  /// The hook may throw — run_cycle propagates the exception, leaving the
  /// system mid-cycle; supervised callers restore a pre-cycle snapshot
  /// before retrying (docs/RECOVERY.md). A default (empty) hook costs one
  /// branch per stage, draws no randomness and cannot perturb outputs.
  using StageHook = std::function<void(CycleStage)>;
  void set_stage_hook(StageHook hook) { stage_hook_ = std::move(hook); }

  /// Run every cycle of a stream in order.
  std::vector<CycleOutcome> run_stream(const dataset::Dataset& data,
                                       crowd::CrowdPlatform& platform,
                                       const dataset::SensingCycleStream& stream);

  /// Write the full mutable loop state to `path` (docs/CHECKPOINTING.md):
  /// every module's trained models and statistics, every RNG stream's
  /// position, the metrics registry (when observability is on), and — when
  /// `platform` is given — the external platform's ledgers and streams.
  /// Requires initialize() to have run (throws std::logic_error otherwise);
  /// file-level failures surface as ckpt::CkptError(kIo).
  void save_checkpoint(const std::string& path,
                       const crowd::CrowdPlatform* platform = nullptr) const;

  /// Restore the state written by save_checkpoint so the next run_cycle
  /// produces byte-identical output to the run that saved — across
  /// processes and at any thread count. Validates the whole container
  /// (magic/version/CRC) before touching any state; on any typed
  /// ckpt::CkptError during apply the previous state is rolled back, so a
  /// failed resume never leaves the system partially mutated. Pass the same
  /// `platform` argument the checkpoint was saved with (state presence is
  /// checked both ways). Marks the system initialized on success.
  void resume_from(const std::string& path, crowd::CrowdPlatform* platform = nullptr);

  /// The full checkpoint file image (header + payload) of the current state
  /// — exactly the bytes save_checkpoint writes, without touching disk. The
  /// Supervisor captures one before every cycle as its retry snapshot.
  /// Requires initialize() to have run.
  std::string state_image(const crowd::CrowdPlatform* platform = nullptr) const;

  /// Restore from an in-memory file image (the resume_from body without the
  /// file read): validates the whole container first, applies with rollback
  /// on any typed failure, marks the system initialized on success.
  void load_state_image(const std::string& image, crowd::CrowdPlatform* platform = nullptr);

  /// Number of run_cycle calls completed (checkpoint cursor: a resumed
  /// caller skips stream cycles with index < cycles_run()).
  std::size_t cycles_run() const { return cycles_run_; }

  experts::ExpertCommittee& committee() { return committee_; }
  Ipd& ipd() { return ipd_; }
  CqcModule& cqc() { return cqc_; }
  crowd::QueryBroker& broker() { return broker_; }
  const CrowdLearnConfig& config() const { return cfg_; }
  bool initialized() const { return initialized_; }
  util::ThreadPool& thread_pool() { return *pool_; }

  /// Create the Observability context and wire every module's metric
  /// handles. Called by the constructor when cfg.observability.enabled;
  /// callable afterwards (e.g. from a bench on a pre-built runner).
  /// Idempotent; a no-op when instrumentation is compiled out.
  void enable_observability();
  /// The system's registry + tracer; nullptr while observability is off.
  obs::Observability* observability() { return obs_.get(); }
  const obs::Observability* observability() const { return obs_.get(); }

 private:
  CrowdLearnConfig cfg_;
  /// Declared before pool_ (and every module): pool workers and modules
  /// record through raw handles into this registry, so it must be destroyed
  /// last.
  std::shared_ptr<obs::Observability> obs_;
  /// Owns the worker pool the committee and CQC borrow; declared before them
  /// so it outlives every borrower.
  std::shared_ptr<util::ThreadPool> pool_;
  bool owns_pool_ = true;  ///< false when cfg.shared_pool was borrowed
  experts::ExpertCommittee committee_;
  Qss qss_;
  Ipd ipd_;
  CqcModule cqc_;
  Mic mic_;
  crowd::QueryBroker broker_;
  Rng rng_;
  bool initialized_ = false;
  std::size_t cycles_run_ = 0;
  StageHook stage_hook_;

  void stage(CycleStage s) {
    if (stage_hook_) stage_hook_(s);
  }

  /// Serialize / apply the full system state (shared by save_checkpoint,
  /// resume_from and its rollback buffer).
  void serialize_state(ckpt::Writer& w, const crowd::CrowdPlatform* platform) const;
  void apply_state(ckpt::Reader& r, crowd::CrowdPlatform* platform);
  /// Validated-payload apply with rollback (shared by resume_from and
  /// load_state_image).
  void apply_payload(std::string payload, crowd::CrowdPlatform* platform);

  /// System-level handles cached by enable_observability().
  obs::Counter* obs_cycles_ = nullptr;
  obs::Counter* obs_queries_ = nullptr;
  obs::Counter* obs_fallbacks_ = nullptr;
  obs::Counter* obs_partials_ = nullptr;
  obs::Counter* obs_failures_ = nullptr;
  obs::Histogram* obs_algo_seconds_ = nullptr;
  obs::Histogram* obs_crowd_delay_ = nullptr;
};

}  // namespace crowdlearn::core
