#include "core/cqc_module.hpp"

#include <chrono>
#include <stdexcept>

#include "cache/artifact_cache.hpp"
#include "ckpt/io.hpp"
#include "stats/distribution.hpp"

namespace crowdlearn::core {

namespace {

/// Argmax of the raw (un-refined) majority tally over valid worker labels;
/// the yardstick CQC's refined labels are compared against.
std::size_t majority_label(const crowd::QueryResponse& response) {
  std::vector<double> tally(dataset::kNumSeverityClasses, 0.0);
  for (const crowd::WorkerAnswer& a : response.answers)
    if (a.label_valid()) tally[a.label] += 1.0;
  return stats::argmax(tally);
}

}  // namespace

std::vector<truth::LabeledQuery> CqcModule::labeled_queries_from_pilot(
    const crowd::PilotResult& pilot, const dataset::Dataset& data) {
  std::vector<truth::LabeledQuery> out;
  for (const auto& context_cells : pilot.cells) {
    for (const crowd::PilotCell& cell : context_cells) {
      for (const crowd::QueryResponse& resp : cell.responses) {
        truth::LabeledQuery lq;
        lq.response = resp;
        lq.true_label = dataset::label_index(data.image(resp.image_id).true_label);
        out.push_back(std::move(lq));
      }
    }
  }
  if (out.empty())
    throw std::invalid_argument("labeled_queries_from_pilot: pilot has no responses");
  return out;
}

void CqcModule::fit_from_pilot(const crowd::PilotResult& pilot, const dataset::Dataset& data) {
  fit(labeled_queries_from_pilot(pilot, data));
}

void CqcModule::fit(const std::vector<truth::LabeledQuery>& training) {
  if (cache_ == nullptr) {
    aggregator_.fit(training);
    return;
  }
  ckpt::Hasher128 h;
  h.str("crowdlearn.cqc.fit.v1");
  truth::hash_config(h, aggregator_.config());
  truth::hash_training(h, training);
  const ckpt::Digest128 key = h.digest();
  cache::FetchResult fetched = cache_->fetch_or_compute(key, [&] {
    aggregator_.fit(training);
    ckpt::Writer w;
    aggregator_.save_state(w);
    return w.payload();
  });
  if (fetched.computed) return;  // this call ran the fit; the forest is live
  try {
    ckpt::Reader r(std::move(fetched.payload));
    aggregator_.load_state(r);
    r.expect_end();
  } catch (const ckpt::CkptError&) {
    // Stored payload does not match the current forest schema: drop the
    // poisoned entry and fit for real (load_state either fully applies or
    // leaves the previous forest — either way the refit overwrites it).
    cache_->invalidate(key);
    aggregator_.fit(training);
  }
}

std::vector<std::vector<double>> CqcModule::refine(
    const std::vector<crowd::QueryResponse>& responses) {
  obs::SpanScope span(obs::tracer_of(obs_), "cqc.refine", "core");
  span.arg("responses", static_cast<double>(responses.size()));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::vector<double>> refined = aggregator_.aggregate(responses);
  if (obs::active(obs_)) {
    obs_refine_seconds_->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
    obs_refined_->inc(responses.size());
    for (std::size_t i = 0; i < responses.size(); ++i) {
      if (stats::argmax(refined[i]) == majority_label(responses[i]))
        obs_majority_agreement_->inc();
    }
  }
  return refined;
}

void CqcModule::set_observability(obs::Observability* o) {
  if (!obs::active(o)) {
    obs_ = nullptr;
    obs_refined_ = nullptr;
    obs_majority_agreement_ = nullptr;
    obs_refine_seconds_ = nullptr;
    return;
  }
  obs_ = o;
  obs::MetricsRegistry& m = o->metrics();
  obs_refined_ = &m.counter("crowdlearn_cqc_refined_total");
  obs_majority_agreement_ = &m.counter("crowdlearn_cqc_majority_agreement_total");
  obs_refine_seconds_ = &m.histogram("crowdlearn_cqc_refine_seconds",
                                     obs::Histogram::exponential_bounds(1e-5, 4.0, 10));
}

std::vector<std::size_t> CqcModule::refine_labels(
    const std::vector<crowd::QueryResponse>& responses) {
  return aggregator_.aggregate_labels(responses);
}

}  // namespace crowdlearn::core
