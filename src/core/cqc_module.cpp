#include "core/cqc_module.hpp"

#include <stdexcept>

#include "stats/distribution.hpp"

namespace crowdlearn::core {

std::vector<truth::LabeledQuery> CqcModule::labeled_queries_from_pilot(
    const crowd::PilotResult& pilot, const dataset::Dataset& data) {
  std::vector<truth::LabeledQuery> out;
  for (const auto& context_cells : pilot.cells) {
    for (const crowd::PilotCell& cell : context_cells) {
      for (const crowd::QueryResponse& resp : cell.responses) {
        truth::LabeledQuery lq;
        lq.response = resp;
        lq.true_label = dataset::label_index(data.image(resp.image_id).true_label);
        out.push_back(std::move(lq));
      }
    }
  }
  if (out.empty())
    throw std::invalid_argument("labeled_queries_from_pilot: pilot has no responses");
  return out;
}

void CqcModule::fit_from_pilot(const crowd::PilotResult& pilot, const dataset::Dataset& data) {
  fit(labeled_queries_from_pilot(pilot, data));
}

void CqcModule::fit(const std::vector<truth::LabeledQuery>& training) {
  aggregator_.fit(training);
}

std::vector<std::vector<double>> CqcModule::refine(
    const std::vector<crowd::QueryResponse>& responses) {
  return aggregator_.aggregate(responses);
}

std::vector<std::size_t> CqcModule::refine_labels(
    const std::vector<crowd::QueryResponse>& responses) {
  return aggregator_.aggregate_labels(responses);
}

}  // namespace crowdlearn::core
