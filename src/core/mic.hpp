#pragma once
// Machine Intelligence Calibration (paper Section IV-D). Three complementary
// strategies run each sensing cycle after CQC:
//   1. Dynamic expert-weight update: per-expert loss from the symmetric KL
//      divergence between the expert's vote and the CQC truth distribution
//      (Eq. 5), fed into an exponential-weights (Hedge) update.
//   2. Model retraining: CQC's labels fine-tune every expert for the next
//      cycle (handles insufficient-training-data failures).
//   3. Crowd offloading: CQC's labels directly replace the committee's
//      labels for queried images in the current cycle (handles innate-flaw
//      failures the committee cannot learn away).
//
// Note on Eq. (5): the paper's formula reads 1 - delta(KL_sym) but its prose
// says "the more different ... the higher the loss"; we follow the prose and
// use loss = delta(KL_sym) in [0, 1), where delta(d) = d / (1 + d).

#include "experts/committee.hpp"

namespace crowdlearn::core {

struct MicConfig {
  /// Hedge learning rate (eta in the exponential weight update).
  double eta = 1.5;
  /// Strategy toggles (for ablation benches).
  bool enable_weight_update = true;
  bool enable_retraining = true;
  bool enable_offloading = true;
};

class Mic {
 public:
  explicit Mic(const MicConfig& cfg) : cfg_(cfg) {}

  /// Per-expert loss over the queried images (Eq. 5, prose convention):
  /// mean over images of delta(KL_sym(expert vote, truth distribution)).
  /// `votes[i][m]` is expert m's distribution for queried image i;
  /// `truth_dists[i]` is CQC's distribution for the same image.
  std::vector<double> expert_losses(
      const std::vector<std::vector<std::vector<double>>>& votes,
      const std::vector<std::vector<double>>& truth_dists, std::size_t num_experts) const;

  /// Exponential-weights update: w_m <- w_m * exp(-eta * loss_m), normalized.
  std::vector<double> updated_weights(const std::vector<double>& current,
                                      const std::vector<double>& losses) const;

  /// Apply strategy 1 to the committee. Returns the losses for inspection.
  std::vector<double> update_committee_weights(
      experts::ExpertCommittee& committee,
      const std::vector<std::vector<std::vector<double>>>& votes,
      const std::vector<std::vector<double>>& truth_dists) const;

  /// Apply strategy 2: retrain every expert on CQC's hard labels.
  void retrain(experts::ExpertCommittee& committee, const dataset::Dataset& data,
               const std::vector<std::size_t>& queried_ids,
               const std::vector<std::size_t>& truth_labels, Rng& rng) const;

  /// Cached variant (src/cache, docs/CACHING.md): per-expert fine-tunes are
  /// memoized in `cache` keyed by the dataset content digest plus the queried
  /// ids, labels, each expert's spec and pre-retrain state, and its RNG child
  /// stream. Bit-identical to the uncached overload at any thread count; a
  /// null cache degrades to it exactly.
  void retrain(experts::ExpertCommittee& committee, const dataset::Dataset& data,
               const std::vector<std::size_t>& queried_ids,
               const std::vector<std::size_t>& truth_labels, Rng& rng,
               cache::ArtifactCache* cache, const ckpt::Digest128& data_digest) const;

  const MicConfig& config() const { return cfg_; }
  bool offloading_enabled() const { return cfg_.enable_offloading; }

 private:
  MicConfig cfg_;
};

}  // namespace crowdlearn::core
