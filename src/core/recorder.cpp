#include "core/recorder.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "util/csv.hpp"

namespace crowdlearn::core {

void write_cycle_log(const dataset::Dataset& data,
                     const std::vector<CycleOutcome>& outcomes, std::ostream& os,
                     const CycleLogOptions& opts) {
  std::size_t num_experts = 0;
  for (const CycleOutcome& out : outcomes)
    num_experts = std::max(num_experts, out.expert_weights.size());

  std::vector<std::string> header{"cycle",    "context", "images",
                                  "queried",  "accuracy", "crowd_delay_s"};
  if (opts.include_wall_clock) header.push_back("algorithm_delay_s");
  for (const char* col : {"spent_cents", "mean_incentive_cents", "retries",
                          "partial_queries", "failed_queries", "fallbacks"})
    header.push_back(col);
  for (std::size_t m = 0; m < num_experts; ++m)
    header.push_back("w_expert" + std::to_string(m));
  TablePrinter table(header);

  for (const CycleOutcome& out : outcomes) {
    std::size_t correct = 0;
    for (std::size_t i = 0; i < out.image_ids.size(); ++i)
      if (out.predictions[i] == dataset::label_index(data.image(out.image_ids[i]).true_label))
        ++correct;
    double mean_incentive = 0.0;
    for (double c : out.incentives_cents) mean_incentive += c;
    if (!out.incentives_cents.empty())
      mean_incentive /= static_cast<double>(out.incentives_cents.size());

    std::vector<std::string> row{
        std::to_string(out.cycle_index),
        dataset::context_name(out.context),
        std::to_string(out.image_ids.size()),
        std::to_string(out.queried_ids.size()),
        TablePrinter::num(static_cast<double>(correct) /
                              static_cast<double>(out.image_ids.size()),
                          4),
        TablePrinter::num(out.crowd_delay_seconds, 2)};
    if (opts.include_wall_clock)
      row.push_back(TablePrinter::num(out.algorithm_delay_seconds, 6));
    row.push_back(TablePrinter::num(out.spent_cents, 2));
    row.push_back(TablePrinter::num(mean_incentive, 2));
    row.push_back(std::to_string(out.query_retries));
    row.push_back(std::to_string(out.partial_queries));
    row.push_back(std::to_string(out.failed_queries));
    row.push_back(std::to_string(out.fallback_ids.size()));
    for (std::size_t m = 0; m < num_experts; ++m)
      row.push_back(m < out.expert_weights.size()
                        ? TablePrinter::num(out.expert_weights[m], 4)
                        : std::string(""));
    table.add_row(std::move(row));
  }
  table.print_csv(os, opts.include_header);
  if (!os) throw std::runtime_error("write_cycle_log: stream failure");
}

void write_cycle_log(const dataset::Dataset& data, const SchemeEvaluation& eval,
                     std::ostream& os) {
  write_cycle_log(data, eval.outcomes, os);
}

void write_summary(const std::vector<SchemeEvaluation>& evals, std::ostream& os) {
  TablePrinter table({"scheme", "accuracy", "precision", "recall", "f1", "macro_auc",
                      "mean_algorithm_delay_s", "mean_crowd_delay_s", "total_spent_cents"});
  for (const SchemeEvaluation& e : evals)
    table.add_row({e.name, TablePrinter::num(e.report.accuracy, 4),
                   TablePrinter::num(e.report.precision, 4),
                   TablePrinter::num(e.report.recall, 4),
                   TablePrinter::num(e.report.f1, 4), TablePrinter::num(e.macro_auc, 4),
                   TablePrinter::num(e.mean_algorithm_delay_seconds, 6),
                   TablePrinter::num(e.mean_crowd_delay_seconds, 2),
                   TablePrinter::num(e.total_spent_cents, 2)});
  table.print_csv(os);
  if (!os) throw std::runtime_error("write_summary: stream failure");
}

void write_cycle_log_file(const dataset::Dataset& data, const SchemeEvaluation& eval,
                          const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_cycle_log_file: cannot open " + path);
  write_cycle_log(data, eval, os);
}

void write_summary_file(const std::vector<SchemeEvaluation>& evals,
                        const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_summary_file: cannot open " + path);
  write_summary(evals, os);
}

namespace {

const obs::Observability& require_obs(const obs::Observability* o, const char* fn) {
  if (o == nullptr)
    throw std::invalid_argument(std::string(fn) + ": observability is not enabled");
  return *o;
}

}  // namespace

void write_metrics_text(const obs::Observability* o, std::ostream& os) {
  require_obs(o, "write_metrics_text").metrics().write_prometheus(os);
  if (!os) throw std::runtime_error("write_metrics_text: stream failure");
}

void write_metrics_json(const obs::Observability* o, std::ostream& os) {
  require_obs(o, "write_metrics_json").metrics().write_json(os);
  if (!os) throw std::runtime_error("write_metrics_json: stream failure");
}

void write_metrics_text_file(const obs::Observability* o, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_metrics_text_file: cannot open " + path);
  write_metrics_text(o, os);
}

void write_metrics_json_file(const obs::Observability* o, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_metrics_json_file: cannot open " + path);
  write_metrics_json(o, os);
}

void write_trace_file(const obs::Observability* o, const std::string& path) {
  if (!require_obs(o, "write_trace_file").tracer().write_chrome_trace_file(path))
    throw std::runtime_error("write_trace_file: cannot write " + path);
}

bool is_wall_clock_metric(const obs::MetricSample& sample) {
  if (sample.type != obs::MetricType::kHistogram) return false;
  const std::string& n = sample.name;
  const std::string suffix = "_seconds";
  if (n.size() < suffix.size() ||
      n.compare(n.size() - suffix.size(), suffix.size(), suffix) != 0)
    return false;
  // Crowd delays are simulated (a deterministic function of the run's RNG
  // streams); everything else in seconds came off a host clock.
  return n.find("_delay_seconds") == std::string::npos;
}

bool is_host_execution_metric(const obs::MetricSample& sample) {
  if (is_wall_clock_metric(sample)) return true;
  // Thread-pool series (task counts, queue depth) describe how the work was
  // scheduled on THIS host — they scale with num_threads even though the
  // simulated results do not, so they cannot appear in an export compared
  // across thread counts.
  if (sample.name.rfind("crowdlearn_pool", 0) == 0) return true;
  // Recovery series count retries/rollbacks/degraded cycles — how THIS
  // process survived its faults, not what the simulated run computed. A
  // faulted-but-recovered run must still match the unfaulted deterministic
  // snapshot (docs/RECOVERY.md).
  return sample.name.rfind("crowdlearn_recovery", 0) == 0;
}

void write_metrics_json_deterministic(const obs::Observability* o, std::ostream& os) {
  require_obs(o, "write_metrics_json_deterministic")
      .metrics()
      .write_json(os,
                  [](const obs::MetricSample& s) { return !is_host_execution_metric(s); });
  if (!os) throw std::runtime_error("write_metrics_json_deterministic: stream failure");
}

void write_metrics_json_deterministic_file(const obs::Observability* o,
                                           const std::string& path) {
  std::ofstream os(path);
  if (!os)
    throw std::runtime_error("write_metrics_json_deterministic_file: cannot open " + path);
  write_metrics_json_deterministic(o, os);
}

}  // namespace crowdlearn::core
