#pragma once
// Incentive Policy Design (paper Section IV-B): owns an incentive policy —
// the UCB-ALP constrained contextual bandit by default — assigns incentives
// to the QSS query set, and feeds observed crowd delays back into the
// policy. Can be warm-started from the pilot study, as the paper trains IPD
// on the training set.

#include <memory>
#include <vector>

#include "bandit/ucb_alp.hpp"
#include "crowd/pilot.hpp"
#include "obs/observability.hpp"

namespace crowdlearn::core {

struct IpdConfig {
  std::vector<double> incentive_levels{crowd::kIncentiveLevels.begin(),
                                       crowd::kIncentiveLevels.end()};
  double total_budget_cents = 1600.0;  ///< default: $16 for 200 queries (8c avg)
  std::size_t horizon_queries = 200;   ///< 40 cycles x 5 queries
  double delay_scale_seconds = 1500.0;
  double exploration = 2.0;
  std::uint64_t seed = 23;
};

class Ipd {
 public:
  /// Build with the default UCB-ALP policy.
  explicit Ipd(const IpdConfig& cfg);
  /// Build with a caller-supplied policy (fixed / random / epsilon-greedy
  /// for the Figure 8 comparisons and ablations).
  Ipd(const IpdConfig& cfg, std::unique_ptr<bandit::IncentivePolicy> policy);

  /// Incentive (cents) for the next query in the given context.
  double assign_incentive(dataset::TemporalContext context);

  /// Report the completion delay of a query posted at (context, incentive).
  void feedback(dataset::TemporalContext context, double incentive_cents,
                double delay_seconds);

  /// Seed the policy's reward estimates with every pilot observation.
  /// No-op for policies without warm-start support.
  void warm_start_from_pilot(const crowd::PilotResult& pilot);

  /// Record cents actually charged by the platform for a brokered query
  /// (including escalated retries), so the remaining budget reflects real
  /// spend rather than the policy's nominal action costs.
  void record_spend(double cents);
  /// Context-attributed overload used by run_cycle: same accounting, plus a
  /// per-context spend gauge when metrics are wired.
  void record_spend(dataset::TemporalContext context, double cents);
  double spent_cents() const { return spent_cents_; }
  /// Budget headroom (cents) still available for posting queries; the
  /// broker uses it to bound incentive escalation. Never negative.
  double remaining_budget_cents() const {
    return spent_cents_ >= cfg_.total_budget_cents ? 0.0
                                                   : cfg_.total_budget_cents - spent_cents_;
  }

  bandit::IncentivePolicy& policy() { return *policy_; }
  const IpdConfig& config() const { return cfg_; }

  /// Wire IPD metrics: per-(context, incentive) arm-pull counters, spend
  /// gauges (total, per-context) and the remaining-budget gauge. Recording
  /// happens after the policy's choice and never feeds back into it.
  void set_observability(obs::Observability* o);

  /// Checkpoint hooks (src/ckpt): the spend ledger plus the policy's state
  /// (delegated). load_state validates the stored policy name against the
  /// installed policy and throws ckpt::CkptError(kMalformed) on mismatch —
  /// a UCB-ALP checkpoint must not load into a fixed-incentive baseline.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  obs::Counter* pull_counter(dataset::TemporalContext context, double incentive_cents);
  void publish_budget_gauges();

  IpdConfig cfg_;
  std::unique_ptr<bandit::IncentivePolicy> policy_;
  double spent_cents_ = 0.0;  ///< actual charged spend across brokered queries

  obs::Observability* obs_ = nullptr;  ///< not owned; nullptr = no metrics
  /// obs_pulls_[context][level] with one extra trailing slot per context for
  /// incentives off the configured level grid (label incentive="other").
  std::vector<std::vector<obs::Counter*>> obs_pulls_;
  obs::Gauge* obs_spent_ = nullptr;
  obs::Gauge* obs_remaining_ = nullptr;
  std::vector<obs::Gauge*> obs_context_spend_;
};

}  // namespace crowdlearn::core
