#include "core/ipd.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include "ckpt/io.hpp"

namespace crowdlearn::core {

namespace {

std::string format_cents(double cents) {
  if (cents == std::floor(cents)) return std::to_string(static_cast<long long>(cents));
  std::ostringstream os;
  os << cents;
  return os.str();
}

std::unique_ptr<bandit::IncentivePolicy> make_default_policy(const IpdConfig& cfg) {
  bandit::UcbAlpConfig bc;
  bc.action_costs = cfg.incentive_levels;
  bc.num_contexts = dataset::kNumContexts;
  bc.total_budget_cents = cfg.total_budget_cents;
  bc.horizon = cfg.horizon_queries;
  bc.delay_scale_seconds = cfg.delay_scale_seconds;
  bc.exploration = cfg.exploration;
  bc.seed = cfg.seed;
  return std::make_unique<bandit::UcbAlpPolicy>(bc);
}

}  // namespace

Ipd::Ipd(const IpdConfig& cfg) : cfg_(cfg), policy_(make_default_policy(cfg)) {}

Ipd::Ipd(const IpdConfig& cfg, std::unique_ptr<bandit::IncentivePolicy> policy)
    : cfg_(cfg), policy_(std::move(policy)) {
  if (!policy_) throw std::invalid_argument("Ipd: null policy");
}

double Ipd::assign_incentive(dataset::TemporalContext context) {
  const double incentive = policy_->choose(static_cast<std::size_t>(context));
  if (obs::active(obs_)) {
    if (obs::Counter* c = pull_counter(context, incentive)) c->inc();
  }
  return incentive;
}

void Ipd::feedback(dataset::TemporalContext context, double incentive_cents,
                   double delay_seconds) {
  policy_->observe(static_cast<std::size_t>(context), incentive_cents, delay_seconds);
}

void Ipd::record_spend(double cents) {
  spent_cents_ += cents;
  publish_budget_gauges();
}

void Ipd::record_spend(dataset::TemporalContext context, double cents) {
  spent_cents_ += cents;
  if (obs::active(obs_)) {
    obs_context_spend_[static_cast<std::size_t>(context)]->add(cents);
  }
  publish_budget_gauges();
}

void Ipd::publish_budget_gauges() {
  if (!obs::active(obs_)) return;
  obs_spent_->set(spent_cents_);
  obs_remaining_->set(remaining_budget_cents());
}

obs::Counter* Ipd::pull_counter(dataset::TemporalContext context, double incentive_cents) {
  const std::size_t c = static_cast<std::size_t>(context);
  if (c >= obs_pulls_.size()) return nullptr;
  const std::vector<obs::Counter*>& row = obs_pulls_[c];
  for (std::size_t a = 0; a < cfg_.incentive_levels.size(); ++a) {
    if (std::fabs(cfg_.incentive_levels[a] - incentive_cents) < 1e-9) return row[a];
  }
  return row.back();  // the incentive="other" slot
}

void Ipd::set_observability(obs::Observability* o) {
  if (!obs::active(o)) {
    obs_ = nullptr;
    obs_pulls_.clear();
    obs_spent_ = nullptr;
    obs_remaining_ = nullptr;
    obs_context_spend_.clear();
    return;
  }
  obs_ = o;
  obs::MetricsRegistry& m = o->metrics();
  obs_pulls_.assign(dataset::kNumContexts, {});
  obs_context_spend_.resize(dataset::kNumContexts);
  for (std::size_t c = 0; c < dataset::kNumContexts; ++c) {
    const char* ctx = dataset::context_name(static_cast<dataset::TemporalContext>(c));
    std::vector<obs::Counter*>& row = obs_pulls_[c];
    row.reserve(cfg_.incentive_levels.size() + 1);
    for (double level : cfg_.incentive_levels) {
      row.push_back(&m.counter(obs::MetricsRegistry::labeled(
          "crowdlearn_ipd_pulls_total",
          {{"context", ctx}, {"incentive", format_cents(level)}})));
    }
    row.push_back(&m.counter(obs::MetricsRegistry::labeled(
        "crowdlearn_ipd_pulls_total", {{"context", ctx}, {"incentive", "other"}})));
    obs_context_spend_[c] = &m.gauge(obs::MetricsRegistry::labeled(
        "crowdlearn_ipd_context_spent_cents", {{"context", ctx}}));
  }
  obs_spent_ = &m.gauge("crowdlearn_ipd_spent_cents");
  obs_remaining_ = &m.gauge("crowdlearn_ipd_remaining_budget_cents");
  publish_budget_gauges();
}

namespace {
constexpr char kIpdTag[4] = {'I', 'P', 'D', '1'};
}

void Ipd::save_state(ckpt::Writer& w) const {
  w.begin_section(kIpdTag);
  w.str(policy_->name());
  w.f64(spent_cents_);
  policy_->save_state(w);
}

void Ipd::load_state(ckpt::Reader& r) {
  r.expect_section(kIpdTag);
  const std::string stored_policy = r.str();
  if (stored_policy != policy_->name()) {
    throw ckpt::CkptError(ckpt::CkptErrc::kMalformed,
                          "checkpoint holds incentive policy '" + stored_policy +
                              "' but this IPD runs '" + policy_->name() + "'");
  }
  const double spent = r.f64();
  policy_->load_state(r);
  spent_cents_ = spent;
  publish_budget_gauges();
}

void Ipd::warm_start_from_pilot(const crowd::PilotResult& pilot) {
  auto* ucb = dynamic_cast<bandit::UcbAlpPolicy*>(policy_.get());
  if (ucb == nullptr) return;  // baselines have nothing to warm-start
  for (std::size_t c = 0; c < dataset::kNumContexts; ++c) {
    for (const crowd::PilotCell& cell : pilot.cells[c]) {
      for (double delay : cell.query_delays) ucb->warm_start(c, cell.incentive_cents, delay);
    }
  }
}

}  // namespace crowdlearn::core
