#include "core/ipd.hpp"

#include <stdexcept>

namespace crowdlearn::core {

namespace {

std::unique_ptr<bandit::IncentivePolicy> make_default_policy(const IpdConfig& cfg) {
  bandit::UcbAlpConfig bc;
  bc.action_costs = cfg.incentive_levels;
  bc.num_contexts = dataset::kNumContexts;
  bc.total_budget_cents = cfg.total_budget_cents;
  bc.horizon = cfg.horizon_queries;
  bc.delay_scale_seconds = cfg.delay_scale_seconds;
  bc.exploration = cfg.exploration;
  bc.seed = cfg.seed;
  return std::make_unique<bandit::UcbAlpPolicy>(bc);
}

}  // namespace

Ipd::Ipd(const IpdConfig& cfg) : cfg_(cfg), policy_(make_default_policy(cfg)) {}

Ipd::Ipd(const IpdConfig& cfg, std::unique_ptr<bandit::IncentivePolicy> policy)
    : cfg_(cfg), policy_(std::move(policy)) {
  if (!policy_) throw std::invalid_argument("Ipd: null policy");
}

double Ipd::assign_incentive(dataset::TemporalContext context) {
  return policy_->choose(static_cast<std::size_t>(context));
}

void Ipd::feedback(dataset::TemporalContext context, double incentive_cents,
                   double delay_seconds) {
  policy_->observe(static_cast<std::size_t>(context), incentive_cents, delay_seconds);
}

void Ipd::warm_start_from_pilot(const crowd::PilotResult& pilot) {
  auto* ucb = dynamic_cast<bandit::UcbAlpPolicy*>(policy_.get());
  if (ucb == nullptr) return;  // baselines have nothing to warm-start
  for (std::size_t c = 0; c < dataset::kNumContexts; ++c) {
    for (const crowd::PilotCell& cell : pilot.cells[c]) {
      for (double delay : cell.query_delays) ucb->warm_start(c, cell.incentive_cents, delay);
    }
  }
}

}  // namespace crowdlearn::core
