#include "core/crowdlearn_system.hpp"

#include <stdexcept>

#include "ckpt/state.hpp"
#include "stats/distribution.hpp"

namespace crowdlearn::core {

const char* cycle_stage_name(CycleStage stage) {
  switch (stage) {
    case CycleStage::kIngest: return "ingest";
    case CycleStage::kCommittee: return "committee";
    case CycleStage::kQss: return "qss";
    case CycleStage::kCrowd: return "crowd";
    case CycleStage::kCqc: return "cqc";
    case CycleStage::kMic: return "mic";
    case CycleStage::kRecord: return "record";
  }
  return "unknown";
}

CrowdLearnSystem::CrowdLearnSystem(experts::ExpertCommittee committee,
                                   const CrowdLearnConfig& cfg)
    : cfg_(cfg),
      pool_(cfg.shared_pool != nullptr
                ? cfg.shared_pool
                : std::make_shared<util::ThreadPool>(util::resolve_thread_count(cfg.num_threads))),
      owns_pool_(cfg.shared_pool == nullptr),
      committee_(std::move(committee)),
      qss_(cfg.qss),
      ipd_(cfg.ipd),
      cqc_(cfg.cqc),
      mic_(cfg.mic),
      broker_(cfg.broker),
      rng_(cfg.seed) {
  committee_.set_thread_pool(pool_.get());
  cqc_.set_thread_pool(pool_.get());
  cqc_.set_artifact_cache(cfg_.artifact_cache.get());
  if (cfg_.observability.enabled) enable_observability();
}

void CrowdLearnSystem::enable_observability() {
  if (!obs::kCompiledIn || obs_ != nullptr) return;
  cfg_.observability.enabled = true;
  obs_ = std::make_shared<obs::Observability>(cfg_.observability);
  obs::Observability* o = obs_.get();
  // A borrowed pool is shared across tenants; attaching one tenant's
  // registry to it would cross-wire another tenant's scheduling series.
  if (owns_pool_) pool_->set_observability(o);
  committee_.set_observability(o);
  qss_.set_observability(o);
  ipd_.set_observability(o);
  cqc_.set_observability(o);
  broker_.set_observability(o);
  obs::MetricsRegistry& m = o->metrics();
  obs_cycles_ = &m.counter("crowdlearn_cycles_total");
  obs_queries_ = &m.counter("crowdlearn_queries_total");
  obs_fallbacks_ = &m.counter("crowdlearn_query_fallbacks_total");
  obs_partials_ = &m.counter("crowdlearn_query_partials_total");
  obs_failures_ = &m.counter("crowdlearn_query_failures_total");
  obs_algo_seconds_ = &m.histogram("crowdlearn_cycle_algorithm_seconds",
                                   obs::Histogram::exponential_bounds(0.01, 2.0, 12));
  obs_crowd_delay_ = &m.histogram("crowdlearn_cycle_crowd_delay_seconds",
                                  obs::Histogram::exponential_bounds(30.0, 2.0, 9));
}

void CrowdLearnSystem::initialize(const dataset::Dataset& data,
                                  const crowd::PilotResult& pilot) {
  // A committee cloned from a previous run arrives pre-trained; reuse it.
  if (!committee_.all_trained()) {
    if (cfg_.artifact_cache != nullptr) {
      committee_.train_all(data, data.train_indices, rng_, cfg_.artifact_cache.get(),
                           data.content_digest());
    } else {
      committee_.train_all(data, data.train_indices, rng_);
    }
  }
  cqc_.fit_from_pilot(pilot, data);
  ipd_.warm_start_from_pilot(pilot);
  initialized_ = true;
}

CycleOutcome CrowdLearnSystem::run_cycle(const dataset::Dataset& data,
                                         crowd::CrowdPlatform& platform,
                                         const dataset::SensingCycle& cycle) {
  return run_cycle(data, platform, cycle, CycleRunOptions{});
}

CycleOutcome CrowdLearnSystem::run_cycle(const dataset::Dataset& data,
                                         crowd::CrowdPlatform& platform,
                                         const dataset::SensingCycle& cycle,
                                         const CycleRunOptions& opts) {
  if (!initialized_) throw std::logic_error("CrowdLearnSystem: run_cycle before initialize");
  if (cycle.image_ids.empty())
    throw std::invalid_argument("CrowdLearnSystem: empty sensing cycle");
  stage(CycleStage::kIngest);

  obs::SpanScope cycle_span(obs::tracer_of(obs_.get()), "cycle", "core");
  cycle_span.arg("cycle_index", static_cast<double>(cycle.index));

  CycleOutcome out;
  out.cycle_index = cycle.index;
  out.context = cycle.context;
  out.image_ids = cycle.image_ids;
  out.probabilities.resize(cycle.image_ids.size());
  out.predictions.resize(cycle.image_ids.size());

  Stopwatch ai_clock;
  const double spent_before = platform.total_spent_cents();

  // (1) QSS: uncertainty-ranked, epsilon-greedy query-set selection. All
  // per-image committee votes are precomputed through the thread pool first;
  // ranking then runs on this thread over the finished batch. Degenerate
  // expert output (NaN / zero-mass votes) is quarantined before anything
  // downstream consumes the batch — the scan runs on this thread, in index
  // order, so parallel inference cannot perturb it.
  stage(CycleStage::kCommittee);
  const std::size_t query_count = std::min(cfg_.queries_per_cycle, cycle.image_ids.size());
  auto votes_batch = committee_.expert_votes_batch(data, cycle.image_ids);
  committee_.quarantine_degenerate_votes(votes_batch);

  if (opts.degraded) {
    // Degraded mode: the committee answers everything; the crowd-facing
    // stages (QSS/IPD/broker/CQC/MIC) are skipped entirely — no crowd
    // randomness or spend is consumed and the trained state is untouched.
    for (std::size_t pos = 0; pos < cycle.image_ids.size(); ++pos) {
      out.probabilities[pos] = committee_.committee_vote(votes_batch[pos]);
      out.predictions[pos] = stats::argmax(out.probabilities[pos]);
    }
    out.expert_weights = committee_.weights();
    stage(CycleStage::kRecord);
    out.algorithm_delay_seconds = ai_clock.elapsed_seconds();
    if (obs::active(obs_.get())) {
      obs_cycles_->inc();
      obs_algo_seconds_->observe(out.algorithm_delay_seconds);
    }
    ++cycles_run_;
    return out;
  }

  stage(CycleStage::kQss);
  QssSelection sel = qss_.select(committee_, cycle.image_ids, std::move(votes_batch),
                                 query_count);
  out.queried_ids = sel.queried_ids;

  // (2) IPD + broker: one incentive decision per query; the broker runs the
  // full resilient lifecycle (deadline, dedup, retries, escalation bounded
  // by IPD's remaining budget). The platform's simulated crowd delay is not
  // part of the AI-side wall clock.
  stage(CycleStage::kCrowd);
  const double ai_before_crowd = ai_clock.elapsed_seconds();
  std::vector<crowd::QueryResult> results;
  results.reserve(sel.queried_ids.size());
  double delay_sum = 0.0;
  {
    obs::SpanScope crowd_span(obs::tracer_of(obs_.get()), "crowd.queries", "crowd");
    crowd_span.arg("queries", static_cast<double>(sel.queried_ids.size()));
    for (std::size_t q = 0; q < sel.queried_ids.size(); ++q) {
      const double incentive = ipd_.assign_incentive(cycle.context);
      out.incentives_cents.push_back(incentive);
      crowd::QueryResult r = broker_.execute(platform, sel.queried_ids[q], incentive,
                                             cycle.context, ipd_.remaining_budget_cents());
      // Queries that never reached workers (outage, budget refusal) carry no
      // incentive->delay signal; feeding them to the bandit would corrupt it.
      if (r.delay_feedback_valid)
        ipd_.feedback(cycle.context, incentive, r.response.completion_delay_seconds);
      ipd_.record_spend(cycle.context, r.total_charged_cents);
      delay_sum += r.response.completion_delay_seconds;
      // Cycle telemetry counts every repost, whatever its cause; the broker
      // keeps the two retry budgets distinct (see broker.hpp).
      out.query_retries += r.retries + r.outage_retries;
      results.push_back(std::move(r));
    }
  }
  if (!results.empty())
    out.crowd_delay_seconds = delay_sum / static_cast<double>(results.size());

  // Partition brokered outcomes: usable responses feed CQC/MIC; failed
  // queries degrade gracefully to the committee's own prediction below.
  stage(CycleStage::kCqc);
  std::vector<crowd::QueryResponse> responses;  // ok subset, queried order
  std::vector<std::size_t> ok_query_index(results.size(), results.size());
  std::vector<std::size_t> ok_ids;
  for (std::size_t q = 0; q < results.size(); ++q) {
    if (results[q].ok()) {
      ok_query_index[q] = responses.size();
      responses.push_back(results[q].response);
      ok_ids.push_back(sel.queried_ids[q]);
      if (results[q].outcome == crowd::QueryOutcome::kPartial) ++out.partial_queries;
    } else {
      ++out.failed_queries;
      out.fallback_ids.push_back(sel.queried_ids[q]);
    }
  }

  std::vector<std::vector<double>> truth_dists;
  std::vector<std::size_t> truth_labels;
  if (!responses.empty()) {
    // (3) CQC: refine raw answers into truthful distributions. Masked
    // features absorb partial answer sets; failed queries never get here.
    truth_dists = cqc_.refine(responses);
    truth_labels.reserve(truth_dists.size());
    for (const auto& d : truth_dists) truth_labels.push_back(stats::argmax(d));

    // (4a) MIC weight update from the queried images' expert votes. Only
    // queries with real crowd truth contribute; fallback images must not
    // move the Hedge weights (there is nothing to score the experts against).
    std::vector<std::vector<std::vector<double>>> queried_votes;
    queried_votes.reserve(responses.size());
    for (std::size_t q = 0; q < sel.queried_positions.size(); ++q)
      if (results[q].ok()) queried_votes.push_back(sel.votes[sel.queried_positions[q]]);
    obs::SpanScope mic_span(obs::tracer_of(obs_.get()), "mic.weight_update", "core");
    out.expert_losses = mic_.update_committee_weights(committee_, queried_votes, truth_dists);
  }
  out.expert_weights = committee_.weights();

  stage(CycleStage::kMic);
  // Final labels: crowd offloading for successfully queried images,
  // reweighted committee vote (cached expert votes, new weights) for the
  // rest — including failed queries, which fall back to the committee.
  for (std::size_t q = 0; q < sel.queried_positions.size(); ++q) {
    const std::size_t pos = sel.queried_positions[q];
    const bool crowd_ok = results[q].ok() && !truth_dists.empty();
    if (mic_.offloading_enabled() && crowd_ok) {
      out.probabilities[pos] = truth_dists[ok_query_index[q]];
      out.predictions[pos] = truth_labels[ok_query_index[q]];
    } else {
      out.probabilities[pos] = committee_.committee_vote(sel.votes[pos]);
      out.predictions[pos] = stats::argmax(out.probabilities[pos]);
    }
  }
  for (std::size_t pos : sel.remaining_positions) {
    out.probabilities[pos] = committee_.committee_vote(sel.votes[pos]);
    out.predictions[pos] = stats::argmax(out.probabilities[pos]);
  }

  // (4b) MIC retraining with CQC labels, effective from the next cycle.
  // Fallback images contribute nothing (their "label" would just echo the
  // committee back at itself). A successful retrain also reinstates any
  // quarantined experts.
  if (!truth_labels.empty()) {
    obs::SpanScope retrain_span(obs::tracer_of(obs_.get()), "mic.retrain", "core");
    retrain_span.arg("labels", static_cast<double>(truth_labels.size()));
    if (cfg_.artifact_cache != nullptr) {
      mic_.retrain(committee_, data, ok_ids, truth_labels, rng_, cfg_.artifact_cache.get(),
                   data.content_digest());
    } else {
      mic_.retrain(committee_, data, ok_ids, truth_labels, rng_);
    }
  }

  stage(CycleStage::kRecord);
  out.algorithm_delay_seconds = ai_clock.elapsed_seconds();
  (void)ai_before_crowd;  // platform calls are simulated and effectively instant
  out.spent_cents = platform.total_spent_cents() - spent_before;

  if (obs::active(obs_.get())) {
    obs_cycles_->inc();
    obs_queries_->inc(sel.queried_ids.size());
    obs_fallbacks_->inc(out.fallback_ids.size());
    obs_partials_->inc(out.partial_queries);
    obs_failures_->inc(out.failed_queries);
    obs_algo_seconds_->observe(out.algorithm_delay_seconds);
    if (!results.empty()) obs_crowd_delay_->observe(out.crowd_delay_seconds);
  }
  ++cycles_run_;
  return out;
}

namespace {
constexpr char kSystemTag[4] = {'S', 'Y', 'S', '1'};
}

void CrowdLearnSystem::serialize_state(ckpt::Writer& w,
                                       const crowd::CrowdPlatform* platform) const {
  w.begin_section(kSystemTag);
  // Config fingerprint: everything the restored modules' shapes and RNG
  // streams were derived from. A checkpoint only makes sense on a system
  // built with the same knobs.
  w.u64(cfg_.seed);
  w.u64(cfg_.queries_per_cycle);
  w.u64(committee_.size());
  w.u64(cfg_.qss.seed);
  w.u64(cfg_.ipd.seed);
  w.f64(cfg_.ipd.total_budget_cents);
  w.u64(cfg_.ipd.horizon_queries);

  w.u64(cycles_run_);
  ckpt::save_rng(w, rng_);
  committee_.save_state(w);
  qss_.save_state(w);
  ipd_.save_state(w);
  cqc_.save_state(w);
  broker_.save_state(w);

  w.u8(obs_ != nullptr ? 1 : 0);
  if (obs_ != nullptr) ckpt::save_metrics(w, obs_->metrics());

  w.u8(platform != nullptr ? 1 : 0);
  if (platform != nullptr) platform->save_state(w);
}

void CrowdLearnSystem::apply_state(ckpt::Reader& r, crowd::CrowdPlatform* platform) {
  r.expect_section(kSystemTag);
  const std::uint64_t seed = r.u64();
  const std::uint64_t queries_per_cycle = r.u64();
  const std::uint64_t num_experts = r.u64();
  const std::uint64_t qss_seed = r.u64();
  const std::uint64_t ipd_seed = r.u64();
  const double ipd_budget = r.f64();
  const std::uint64_t ipd_horizon = r.u64();
  if (seed != cfg_.seed || queries_per_cycle != cfg_.queries_per_cycle ||
      num_experts != committee_.size() || qss_seed != cfg_.qss.seed ||
      ipd_seed != cfg_.ipd.seed || ipd_budget != cfg_.ipd.total_budget_cents ||
      ipd_horizon != cfg_.ipd.horizon_queries) {
    throw ckpt::CkptError(ckpt::CkptErrc::kConfigMismatch,
                          "checkpoint was produced under a different system config");
  }

  cycles_run_ = static_cast<std::size_t>(r.u64());
  ckpt::load_rng(r, rng_);
  committee_.load_state(r);
  qss_.load_state(r);
  ipd_.load_state(r);
  cqc_.load_state(r);
  broker_.load_state(r);

  if (r.u8() != 0) {
    if (obs_ != nullptr) {
      ckpt::load_metrics(r, obs_->metrics());
    } else {
      // Consume (and validate) the section so the stream stays in sync; the
      // values land in a scratch registry that dies here.
      obs::MetricsRegistry scratch;
      ckpt::load_metrics(r, scratch);
    }
  }

  const bool has_platform = r.u8() != 0;
  if (has_platform != (platform != nullptr)) {
    throw ckpt::CkptError(
        ckpt::CkptErrc::kConfigMismatch,
        has_platform ? "checkpoint carries platform state; pass the platform to resume_from"
                     : "checkpoint has no platform state but a platform was supplied");
  }
  if (platform != nullptr) platform->load_state(r);
  r.expect_end();
}

std::string CrowdLearnSystem::state_image(const crowd::CrowdPlatform* platform) const {
  if (!initialized_)
    throw std::logic_error("CrowdLearnSystem: state_image before initialize");
  ckpt::Writer w;
  serialize_state(w, platform);
  return ckpt::file_image(w);
}

void CrowdLearnSystem::save_checkpoint(const std::string& path,
                                       const crowd::CrowdPlatform* platform) const {
  // Atomic temp+rename write: a crash mid-save leaves the previous
  // checkpoint at `path` intact, never a torn file shadowing it.
  ckpt::atomic_write_file(state_image(platform), path);
}

void CrowdLearnSystem::apply_payload(std::string payload, crowd::CrowdPlatform* platform) {
  // Snapshot the current state so a payload that fails mid-apply (malformed
  // content behind a valid CRC, config mismatch discovered late) rolls back
  // instead of leaving the system half-mutated.
  ckpt::Writer rollback;
  serialize_state(rollback, platform);

  ckpt::Reader r(std::move(payload));
  try {
    apply_state(r, platform);
  } catch (...) {
    ckpt::Reader undo(rollback.payload());
    apply_state(undo, platform);
    throw;
  }
  initialized_ = true;
}

void CrowdLearnSystem::load_state_image(const std::string& image,
                                        crowd::CrowdPlatform* platform) {
  apply_payload(ckpt::validate_image(image), platform);
}

void CrowdLearnSystem::resume_from(const std::string& path,
                                   crowd::CrowdPlatform* platform) {
  // Validate the whole container (magic, version, size, CRC) before touching
  // any state.
  apply_payload(ckpt::read_file(path), platform);
}

std::vector<CycleOutcome> CrowdLearnSystem::run_stream(
    const dataset::Dataset& data, crowd::CrowdPlatform& platform,
    const dataset::SensingCycleStream& stream) {
  std::vector<CycleOutcome> outcomes;
  outcomes.reserve(stream.num_cycles());
  for (const dataset::SensingCycle& cycle : stream.cycles())
    outcomes.push_back(run_cycle(data, platform, cycle));
  return outcomes;
}

}  // namespace crowdlearn::core
