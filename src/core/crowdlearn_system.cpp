#include "core/crowdlearn_system.hpp"

#include <stdexcept>

#include "stats/distribution.hpp"

namespace crowdlearn::core {

CrowdLearnSystem::CrowdLearnSystem(experts::ExpertCommittee committee,
                                   const CrowdLearnConfig& cfg)
    : cfg_(cfg),
      pool_(std::make_shared<util::ThreadPool>(util::resolve_thread_count(cfg.num_threads))),
      committee_(std::move(committee)),
      qss_(cfg.qss),
      ipd_(cfg.ipd),
      cqc_(cfg.cqc),
      mic_(cfg.mic),
      rng_(cfg.seed) {
  committee_.set_thread_pool(pool_.get());
  cqc_.set_thread_pool(pool_.get());
}

void CrowdLearnSystem::initialize(const dataset::Dataset& data,
                                  const crowd::PilotResult& pilot) {
  // A committee cloned from a previous run arrives pre-trained; reuse it.
  if (!committee_.all_trained()) committee_.train_all(data, data.train_indices, rng_);
  cqc_.fit_from_pilot(pilot, data);
  ipd_.warm_start_from_pilot(pilot);
  initialized_ = true;
}

CycleOutcome CrowdLearnSystem::run_cycle(const dataset::Dataset& data,
                                         crowd::CrowdPlatform& platform,
                                         const dataset::SensingCycle& cycle) {
  if (!initialized_) throw std::logic_error("CrowdLearnSystem: run_cycle before initialize");
  if (cycle.image_ids.empty())
    throw std::invalid_argument("CrowdLearnSystem: empty sensing cycle");

  CycleOutcome out;
  out.cycle_index = cycle.index;
  out.context = cycle.context;
  out.image_ids = cycle.image_ids;
  out.probabilities.resize(cycle.image_ids.size());
  out.predictions.resize(cycle.image_ids.size());

  Stopwatch ai_clock;
  const double spent_before = platform.total_spent_cents();

  // (1) QSS: uncertainty-ranked, epsilon-greedy query-set selection. All
  // per-image committee votes are precomputed through the thread pool first;
  // ranking then runs on this thread over the finished batch.
  const std::size_t query_count = std::min(cfg_.queries_per_cycle, cycle.image_ids.size());
  QssSelection sel = qss_.select(committee_, cycle.image_ids,
                                 committee_.expert_votes_batch(data, cycle.image_ids),
                                 query_count);
  out.queried_ids = sel.queried_ids;

  // (2) IPD + platform: one incentive decision per query. The platform's
  // simulated crowd delay is not part of the AI-side wall clock.
  const double ai_before_crowd = ai_clock.elapsed_seconds();
  std::vector<crowd::QueryResponse> responses;
  responses.reserve(sel.queried_ids.size());
  double delay_sum = 0.0;
  for (std::size_t q = 0; q < sel.queried_ids.size(); ++q) {
    const double incentive = ipd_.assign_incentive(cycle.context);
    out.incentives_cents.push_back(incentive);
    crowd::QueryResponse resp =
        platform.post_query(sel.queried_ids[q], incentive, cycle.context);
    ipd_.feedback(cycle.context, incentive, resp.completion_delay_seconds);
    delay_sum += resp.completion_delay_seconds;
    responses.push_back(std::move(resp));
  }
  if (!responses.empty())
    out.crowd_delay_seconds = delay_sum / static_cast<double>(responses.size());

  std::vector<std::vector<double>> truth_dists;
  std::vector<std::size_t> truth_labels;
  if (!responses.empty()) {
    // (3) CQC: refine raw answers into truthful distributions.
    truth_dists = cqc_.refine(responses);
    truth_labels.reserve(truth_dists.size());
    for (const auto& d : truth_dists) truth_labels.push_back(stats::argmax(d));

    // (4a) MIC weight update from the queried images' expert votes.
    std::vector<std::vector<std::vector<double>>> queried_votes;
    queried_votes.reserve(sel.queried_positions.size());
    for (std::size_t pos : sel.queried_positions) queried_votes.push_back(sel.votes[pos]);
    out.expert_losses = mic_.update_committee_weights(committee_, queried_votes, truth_dists);
  }
  out.expert_weights = committee_.weights();

  // Final labels: crowd offloading for queried images, reweighted committee
  // vote (cached expert votes, new weights) for the rest.
  for (std::size_t q = 0; q < sel.queried_positions.size(); ++q) {
    const std::size_t pos = sel.queried_positions[q];
    if (mic_.offloading_enabled() && !truth_dists.empty()) {
      out.probabilities[pos] = truth_dists[q];
      out.predictions[pos] = truth_labels[q];
    } else {
      out.probabilities[pos] = committee_.committee_vote(sel.votes[pos]);
      out.predictions[pos] = stats::argmax(out.probabilities[pos]);
    }
  }
  for (std::size_t pos : sel.remaining_positions) {
    out.probabilities[pos] = committee_.committee_vote(sel.votes[pos]);
    out.predictions[pos] = stats::argmax(out.probabilities[pos]);
  }

  // (4b) MIC retraining with CQC labels, effective from the next cycle.
  if (!truth_labels.empty()) mic_.retrain(committee_, data, sel.queried_ids, truth_labels, rng_);

  out.algorithm_delay_seconds = ai_clock.elapsed_seconds();
  (void)ai_before_crowd;  // platform calls are simulated and effectively instant
  out.spent_cents = platform.total_spent_cents() - spent_before;
  return out;
}

std::vector<CycleOutcome> CrowdLearnSystem::run_stream(
    const dataset::Dataset& data, crowd::CrowdPlatform& platform,
    const dataset::SensingCycleStream& stream) {
  std::vector<CycleOutcome> outcomes;
  outcomes.reserve(stream.num_cycles());
  for (const dataset::SensingCycle& cycle : stream.cycles())
    outcomes.push_back(run_cycle(data, platform, cycle));
  return outcomes;
}

}  // namespace crowdlearn::core
