#include "core/qss.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "ckpt/state.hpp"

namespace crowdlearn::core {

QssSelection Qss::select(experts::ExpertCommittee& committee, const dataset::Dataset& data,
                         const std::vector<std::size_t>& cycle_image_ids,
                         std::size_t query_count) {
  if (cycle_image_ids.empty()) throw std::invalid_argument("Qss::select: empty cycle");
  return select(committee, cycle_image_ids,
                committee.expert_votes_batch(data, cycle_image_ids), query_count);
}

QssSelection Qss::select(const experts::ExpertCommittee& committee,
                         const std::vector<std::size_t>& cycle_image_ids,
                         std::vector<std::vector<std::vector<double>>> votes,
                         std::size_t query_count) {
  if (cycle_image_ids.empty()) throw std::invalid_argument("Qss::select: empty cycle");
  if (query_count > cycle_image_ids.size())
    throw std::invalid_argument("Qss::select: query_count exceeds cycle size");
  if (votes.size() != cycle_image_ids.size())
    throw std::invalid_argument("Qss::select: vote batch size mismatch");

  obs::SpanScope span(obs::tracer_of(obs_), "qss.select", "core");
  span.arg("cycle_images", static_cast<double>(cycle_image_ids.size()));
  span.arg("query_count", static_cast<double>(query_count));

  QssSelection sel;
  sel.votes = std::move(votes);
  sel.entropies.reserve(cycle_image_ids.size());
  for (const auto& image_votes : sel.votes)
    sel.entropies.push_back(committee.committee_entropy(image_votes));
  if (obs::active(obs_)) {
    for (double h : sel.entropies) obs_entropy_->observe(h);
  }

  // s_list: positions sorted by entropy, most uncertain first.
  std::vector<std::size_t> s_list(cycle_image_ids.size());
  std::iota(s_list.begin(), s_list.end(), std::size_t{0});
  std::sort(s_list.begin(), s_list.end(), [&](std::size_t a, std::size_t b) {
    return sel.entropies[a] > sel.entropies[b];
  });

  // Epsilon-greedy draw without replacement (Algorithm 1 lines 11-14).
  std::vector<std::size_t> chosen_positions;
  for (std::size_t y = 0; y < query_count; ++y) {
    std::size_t pick_at = 0;  // head of s_list = highest remaining entropy
    const bool explore = cfg_.epsilon > 0.0 && rng_.bernoulli(cfg_.epsilon);
    if (explore) pick_at = rng_.index(s_list.size());
    if (obs::active(obs_)) {
      obs_selections_->inc();
      if (explore) obs_explore_picks_->inc();
    }
    chosen_positions.push_back(s_list[pick_at]);
    s_list.erase(s_list.begin() + static_cast<std::ptrdiff_t>(pick_at));
  }

  for (std::size_t pos : chosen_positions) {
    sel.queried_ids.push_back(cycle_image_ids[pos]);
    sel.queried_positions.push_back(pos);
  }
  for (std::size_t pos : s_list) {
    sel.remaining_ids.push_back(cycle_image_ids[pos]);
    sel.remaining_positions.push_back(pos);
  }
  return sel;
}

void Qss::set_observability(obs::Observability* o) {
  if (!obs::active(o)) {
    obs_ = nullptr;
    obs_entropy_ = nullptr;
    obs_selections_ = nullptr;
    obs_explore_picks_ = nullptr;
    return;
  }
  obs_ = o;
  obs::MetricsRegistry& m = o->metrics();
  // Committee entropy lives in [0, ln 3 ~= 1.0986] for 3 severity classes;
  // 12 x 0.1 buckets cover the range with an empty-by-construction overflow.
  obs_entropy_ = &m.histogram("crowdlearn_qss_entropy",
                              obs::Histogram::linear_bounds(0.1, 0.1, 12));
  obs_selections_ = &m.counter("crowdlearn_qss_selections_total");
  obs_explore_picks_ = &m.counter("crowdlearn_qss_explore_picks_total");
}

namespace {
constexpr char kQssTag[4] = {'Q', 'S', 'S', '1'};
}

void Qss::save_state(ckpt::Writer& w) const {
  w.begin_section(kQssTag);
  ckpt::save_rng(w, rng_);
}

void Qss::load_state(ckpt::Reader& r) {
  r.expect_section(kQssTag);
  ckpt::load_rng(r, rng_);
}

}  // namespace crowdlearn::core
