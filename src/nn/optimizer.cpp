#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace crowdlearn::nn {

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("Sgd: lr must be > 0");
  if (momentum < 0.0 || momentum >= 1.0) throw std::invalid_argument("Sgd: bad momentum");
}

void Sgd::attach(const std::vector<Param>& params) {
  params_ = params;
  velocity_.clear();
  velocity_.reserve(params.size());
  for (const Param& p : params_) velocity_.emplace_back(p.value->rows(), p.value->cols());
}

void Sgd::step() {
  if (params_.empty()) throw std::logic_error("Sgd::step: no parameters attached");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Matrix& w = *params_[i].value;
    Matrix& g = *params_[i].grad;
    Matrix& v = velocity_[i];
    for (std::size_t j = 0; j < w.data().size(); ++j) {
      double grad = g.data()[j] + weight_decay_ * w.data()[j];
      v.data()[j] = momentum_ * v.data()[j] - lr_ * grad;
      w.data()[j] += v.data()[j];
    }
    g.fill(0.0);
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  if (lr <= 0.0) throw std::invalid_argument("Adam: lr must be > 0");
}

void Adam::attach(const std::vector<Param>& params) {
  params_ = params;
  m_.clear();
  v_.clear();
  t_ = 0;
  for (const Param& p : params_) {
    m_.emplace_back(p.value->rows(), p.value->cols());
    v_.emplace_back(p.value->rows(), p.value->cols());
  }
}

void Adam::step() {
  if (params_.empty()) throw std::logic_error("Adam::step: no parameters attached");
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Matrix& w = *params_[i].value;
    Matrix& g = *params_[i].grad;
    for (std::size_t j = 0; j < w.data().size(); ++j) {
      const double grad = g.data()[j];
      m_[i].data()[j] = beta1_ * m_[i].data()[j] + (1.0 - beta1_) * grad;
      v_[i].data()[j] = beta2_ * v_[i].data()[j] + (1.0 - beta2_) * grad * grad;
      const double mhat = m_[i].data()[j] / bc1;
      const double vhat = v_[i].data()[j] / bc2;
      w.data()[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
    g.fill(0.0);
  }
}

}  // namespace crowdlearn::nn
