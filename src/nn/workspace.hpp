#pragma once
// Reusable scratch buffers for the NN compute path.
//
// Every im2col/GEMM kernel needs intermediate matrices (column buffers,
// transposed weights, pre-bias output panels). Allocating them per call put a
// malloc/free pair inside the per-cycle hot loop; a Workspace instead owns
// one named buffer per (layer, slot) pair, sized on first use and reused —
// with capacity kept — forever after. Sequential owns one Workspace (on the
// heap, so the pointer handed to layers survives moves of the Sequential) and
// binds every layer to it; a standalone layer lazily creates a private one.
//
// The Workspace also carries the optional util::ThreadPool the kernels chunk
// their batch loops over. Scratch contents are transient within a single
// forward/backward call except where a layer explicitly retains a slot
// (Conv2D keeps its im2col buffer from forward(training=true) for backward).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "nn/matrix.hpp"

namespace crowdlearn::util {
class ThreadPool;
}

namespace crowdlearn::nn {

class Workspace {
 public:
  /// Scratch matrix for (layer_id, slot), reshaped to rows x cols. The
  /// backing allocation is reused across calls, and the returned reference
  /// is stable for the Workspace's lifetime (entries are heap-anchored, so
  /// registry growth never moves them).
  Matrix& buffer(std::size_t layer_id, std::size_t slot, std::size_t rows, std::size_t cols);

  /// Ping-pong activation buffers for Sequential::forward_ws (slot 0/1).
  /// Shaped by the layer writing into them, not here.
  Matrix& activation(std::size_t slot);

  /// Pool the kernels chunk batch loops over; nullptr = serial. Not owned.
  util::ThreadPool* pool() const { return pool_; }
  void set_pool(util::ThreadPool* p) { pool_ = p; }

  /// Number of buffer() calls that had to allocate (first use, or a request
  /// larger than every previous one). Steady-state reuse keeps this constant
  /// — the workspace-reuse tests assert exactly that.
  std::size_t grow_count() const { return grow_count_; }

 private:
  // Small flat registry (a handful of layers x a handful of slots): linear
  // lookup is allocation-free and faster than a hash map at this size.
  // unique_ptr anchors each Matrix so references survive registry growth.
  std::vector<std::pair<std::uint64_t, std::unique_ptr<Matrix>>> buffers_;
  Matrix activations_[2];
  util::ThreadPool* pool_ = nullptr;
  std::size_t grow_count_ = 0;
};

}  // namespace crowdlearn::nn
