// Portable-ISA instantiation of the tiled GEMM body (see gemm_tiled.hpp for
// why the ISA split is a TU boundary). Compiled with the project's default
// flags only; always present, used when the AVX-512 TU is unavailable at
// build time or unsupported by the host at run time.
#include "nn/gemm_tiled.hpp"

namespace crowdlearn::nn::detail {

void gemm_tiled_rows_generic(const double* a, const double* b, double* out,
                             std::size_t row_begin, std::size_t row_end, std::size_t k_dim,
                             std::size_t p) {
  gemm_tiled_rows(a, b, out, row_begin, row_end, k_dim, p);
}

}  // namespace crowdlearn::nn::detail
