#pragma once
// Sequential container + minibatch training loop. This is the complete
// model abstraction the DDA experts are built on.

#include <memory>
#include <vector>

#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/workspace.hpp"
#include "util/rng.hpp"

namespace crowdlearn::util {
class ThreadPool;
}

namespace crowdlearn::nn {

enum class OptimizerKind { kSgd, kAdam };

struct TrainConfig {
  std::size_t epochs = 20;
  std::size_t batch_size = 32;
  double learning_rate = 0.01;
  double momentum = 0.9;       ///< SGD only
  double weight_decay = 1e-4;  ///< SGD only (L2)
  bool shuffle = true;
  OptimizerKind optimizer = OptimizerKind::kSgd;
};

struct EpochStats {
  double mean_loss = 0.0;
  double accuracy = 0.0;
};

/// Feed-forward stack of layers. Owns the layers plus a shared nn::Workspace
/// of reusable scratch/activation buffers (sized on first use, reused across
/// forward/backward and across sensing cycles); exposes forward inference,
/// and hard-label / soft-label training.
class Sequential {
 public:
  Sequential();

  /// Append a layer (it is bound to the model's workspace). Adjacent layer
  /// sizes must be compatible.
  void add(std::unique_ptr<Layer> layer);

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  std::size_t input_size() const;
  std::size_t output_size() const;

  /// Forward pass producing raw logits (one row per sample).
  Matrix forward(const Matrix& input, bool training = false);

  /// Allocation-free forward: chains forward_into through the workspace's
  /// ping-pong activation buffers and returns a reference to the final one.
  /// The reference is valid until the next forward_ws/forward call on this
  /// model. Bit-identical to forward().
  const Matrix& forward_ws(const Matrix& input, bool training);

  /// Attach a thread pool (nullptr = serial) that the layer kernels chunk
  /// their batch loops over, under the util::ThreadPool determinism
  /// contract — outputs are byte-identical at any thread count. The pool
  /// must outlive this model's use of it. Not copied by clone().
  void set_thread_pool(util::ThreadPool* pool) { ws_->set_pool(pool); }
  util::ThreadPool* thread_pool() const { return ws_->pool(); }

  /// The model's scratch workspace (tests assert on its grow_count()).
  const Workspace& workspace() const { return *ws_; }

  /// Softmax class probabilities.
  Matrix predict_proba(const Matrix& input);

  /// Argmax class predictions.
  std::vector<std::size_t> predict(const Matrix& input);

  /// Train with hard labels. Returns per-epoch stats (training loss/accuracy).
  std::vector<EpochStats> fit(const Matrix& x, const std::vector<std::size_t>& y,
                              const TrainConfig& cfg, Rng& rng);

  /// Train with soft target distributions (one row per sample).
  std::vector<EpochStats> fit_soft(const Matrix& x, const Matrix& targets,
                                   const TrainConfig& cfg, Rng& rng);

  std::vector<Param> params();

  /// Deep copy of the whole model (layers and learned parameters).
  Sequential clone() const;

  /// Total number of scalar learnable parameters.
  std::size_t num_parameters();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  // Heap-anchored so the pointer bound into layers survives moves of the
  // Sequential itself (experts move their models around freely).
  std::unique_ptr<Workspace> ws_;

  template <typename MakeLoss>
  std::vector<EpochStats> fit_impl(const Matrix& x, std::size_t n, const TrainConfig& cfg,
                                   Rng& rng, MakeLoss&& make_loss);
};

}  // namespace crowdlearn::nn
