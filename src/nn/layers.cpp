#include "nn/layers.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/workspace.hpp"
#include "util/thread_pool.hpp"

namespace crowdlearn::nn {

namespace {

/// Static-chunk the row range [0, n) over the workspace pool (serial when
/// unbound or single-threaded). Rows are independent targets, so any chunk
/// partition yields the bits the serial loop would.
template <typename ChunkFn>
void run_row_chunks(Workspace* ws, std::size_t n, std::size_t min_grain, ChunkFn&& fn) {
  util::ThreadPool* pool = ws != nullptr ? ws->pool() : nullptr;
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_chunks_grained(n, min_grain, fn);
  } else if (n > 0) {
    fn(std::size_t{0}, n);
  }
}

}  // namespace

Dense::Dense(std::size_t in, std::size_t out, Rng& rng)
    : in_(in), out_(out), w_(in, out), b_(1, out), dw_(in, out), db_(1, out) {
  if (in == 0 || out == 0) throw std::invalid_argument("Dense: zero dimension");
  // He-uniform initialization: U(-limit, limit), limit = sqrt(6 / fan_in).
  const double limit = std::sqrt(6.0 / static_cast<double>(in));
  for (std::size_t r = 0; r < in; ++r)
    for (std::size_t c = 0; c < out; ++c) w_(r, c) = rng.uniform(-limit, limit);
}

Matrix Dense::forward(const Matrix& input, bool training) {
  Matrix out;
  forward_into(input, out, training);
  return out;
}

void Dense::forward_into(const Matrix& input, Matrix& out, bool /*training*/) {
  if (input.cols() != in_) throw std::invalid_argument("Dense::forward: input width mismatch");
  cached_input_ = input;
  out.reshape(input.rows(), out_);
  // Row-parallel GEMM: each output row's dot products are computed whole on
  // one thread, so the sum order (and therefore every bit) matches the
  // serial input.matmul(w_). Bias is added after, as it always was.
  run_row_chunks(ws_, input.rows(), /*min_grain=*/8,
                 [&](std::size_t begin, std::size_t end) {
                   input.matmul_rows_into(w_, out, begin, end);
                 });
  out.add_row_broadcast(b_);
}

Matrix Dense::backward(const Matrix& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("Dense::backward before forward");
  dw_ += cached_input_.transpose().matmul(grad_output);
  db_ += grad_output.column_sums();
  return grad_output.matmul(w_.transpose());
}

std::vector<Param> Dense::params() {
  return {{&w_, &dw_, "Dense.W"}, {&b_, &db_, "Dense.b"}};
}

Matrix ReLU::forward(const Matrix& input, bool training) {
  Matrix out;
  forward_into(input, out, training);
  return out;
}

void ReLU::forward_into(const Matrix& input, Matrix& out, bool /*training*/) {
  cached_input_ = input;
  out.reshape(input.rows(), input.cols());
  for (std::size_t i = 0; i < input.data().size(); ++i) {
    const double v = input.data()[i];
    out.data()[i] = v > 0.0 ? v : 0.0;
  }
}

Matrix ReLU::backward(const Matrix& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("ReLU::backward before forward");
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.data().size(); ++i)
    if (cached_input_.data()[i] <= 0.0) grad.data()[i] = 0.0;
  return grad;
}

Matrix Tanh::forward(const Matrix& input, bool training) {
  Matrix out;
  forward_into(input, out, training);
  return out;
}

void Tanh::forward_into(const Matrix& input, Matrix& out, bool /*training*/) {
  out.reshape(input.rows(), input.cols());
  for (std::size_t i = 0; i < input.data().size(); ++i)
    out.data()[i] = std::tanh(input.data()[i]);
  cached_output_ = out;
}

Matrix Tanh::backward(const Matrix& grad_output) {
  if (cached_output_.empty()) throw std::logic_error("Tanh::backward before forward");
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.data().size(); ++i) {
    const double y = cached_output_.data()[i];
    grad.data()[i] *= (1.0 - y * y);
  }
  return grad;
}

Dropout::Dropout(std::size_t size, double rate, Rng& rng)
    : size_(size), rate_(rate), rng_(rng.fork()) {
  if (rate < 0.0 || rate >= 1.0) throw std::invalid_argument("Dropout: rate must be in [0,1)");
}

Matrix Dropout::forward(const Matrix& input, bool training) {
  Matrix out;
  forward_into(input, out, training);
  return out;
}

void Dropout::forward_into(const Matrix& input, Matrix& out, bool training) {
  last_training_ = training;
  if (!training || rate_ == 0.0) {
    out = input;
    return;
  }
  // mask_ is reshaped (not reallocated) and fully overwritten below, and the
  // RNG draw order per element is unchanged — bit-identical to the original.
  mask_.reshape(input.rows(), input.cols());
  out.reshape(input.rows(), input.cols());
  const double keep = 1.0 - rate_;
  for (std::size_t i = 0; i < input.data().size(); ++i) {
    const bool kept = rng_.bernoulli(keep);
    mask_.data()[i] = kept ? 1.0 / keep : 0.0;
    out.data()[i] = input.data()[i] * mask_.data()[i];
  }
}

Matrix Dropout::backward(const Matrix& grad_output) {
  if (!last_training_ || rate_ == 0.0) return grad_output;
  if (mask_.empty()) throw std::logic_error("Dropout::backward before forward");
  return grad_output.hadamard(mask_);
}

}  // namespace crowdlearn::nn
