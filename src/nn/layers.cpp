#include "nn/layers.hpp"

#include <cmath>
#include <stdexcept>

namespace crowdlearn::nn {

Dense::Dense(std::size_t in, std::size_t out, Rng& rng)
    : in_(in), out_(out), w_(in, out), b_(1, out), dw_(in, out), db_(1, out) {
  if (in == 0 || out == 0) throw std::invalid_argument("Dense: zero dimension");
  // He-uniform initialization: U(-limit, limit), limit = sqrt(6 / fan_in).
  const double limit = std::sqrt(6.0 / static_cast<double>(in));
  for (std::size_t r = 0; r < in; ++r)
    for (std::size_t c = 0; c < out; ++c) w_(r, c) = rng.uniform(-limit, limit);
}

Matrix Dense::forward(const Matrix& input, bool /*training*/) {
  cached_input_ = input;
  Matrix out = input.matmul(w_);
  out.add_row_broadcast(b_);
  return out;
}

Matrix Dense::backward(const Matrix& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("Dense::backward before forward");
  dw_ += cached_input_.transpose().matmul(grad_output);
  db_ += grad_output.column_sums();
  return grad_output.matmul(w_.transpose());
}

std::vector<Param> Dense::params() {
  return {{&w_, &dw_, "Dense.W"}, {&b_, &db_, "Dense.b"}};
}

Matrix ReLU::forward(const Matrix& input, bool /*training*/) {
  cached_input_ = input;
  return input.map([](double v) { return v > 0.0 ? v : 0.0; });
}

Matrix ReLU::backward(const Matrix& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("ReLU::backward before forward");
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.data().size(); ++i)
    if (cached_input_.data()[i] <= 0.0) grad.data()[i] = 0.0;
  return grad;
}

Matrix Tanh::forward(const Matrix& input, bool /*training*/) {
  cached_output_ = input.map([](double v) { return std::tanh(v); });
  return cached_output_;
}

Matrix Tanh::backward(const Matrix& grad_output) {
  if (cached_output_.empty()) throw std::logic_error("Tanh::backward before forward");
  Matrix grad = grad_output;
  for (std::size_t i = 0; i < grad.data().size(); ++i) {
    const double y = cached_output_.data()[i];
    grad.data()[i] *= (1.0 - y * y);
  }
  return grad;
}

Dropout::Dropout(std::size_t size, double rate, Rng& rng)
    : size_(size), rate_(rate), rng_(rng.fork()) {
  if (rate < 0.0 || rate >= 1.0) throw std::invalid_argument("Dropout: rate must be in [0,1)");
}

Matrix Dropout::forward(const Matrix& input, bool training) {
  last_training_ = training;
  if (!training || rate_ == 0.0) return input;
  mask_ = Matrix(input.rows(), input.cols());
  const double keep = 1.0 - rate_;
  Matrix out = input;
  for (std::size_t i = 0; i < out.data().size(); ++i) {
    const bool kept = rng_.bernoulli(keep);
    mask_.data()[i] = kept ? 1.0 / keep : 0.0;
    out.data()[i] *= mask_.data()[i];
  }
  return out;
}

Matrix Dropout::backward(const Matrix& grad_output) {
  if (!last_training_ || rate_ == 0.0) return grad_output;
  if (mask_.empty()) throw std::logic_error("Dropout::backward before forward");
  return grad_output.hadamard(mask_);
}

}  // namespace crowdlearn::nn
