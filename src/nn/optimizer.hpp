#pragma once
// First-order optimizers operating on the parameter lists exposed by layers.

#include <vector>

#include "nn/layers.hpp"

namespace crowdlearn::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Register the parameters to optimize; must be called once before step().
  virtual void attach(const std::vector<Param>& params) = 0;

  /// Apply one update using the gradients currently accumulated in the
  /// params, then zero the gradients.
  virtual void step() = 0;
};

/// SGD with classical momentum and optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.9, double weight_decay = 0.0);

  void attach(const std::vector<Param>& params) override;
  void step() override;

  void set_learning_rate(double lr) { lr_ = lr; }
  double learning_rate() const { return lr_; }

 private:
  double lr_, momentum_, weight_decay_;
  std::vector<Param> params_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba, 2015).
class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);

  void attach(const std::vector<Param>& params) override;
  void step() override;

 private:
  double lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<Param> params_;
  std::vector<Matrix> m_, v_;
};

}  // namespace crowdlearn::nn
