#include "nn/matrix.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>

namespace crowdlearn::nn {

namespace detail {
// Two instantiations of the tiled kernel body (nn/gemm_tiled.hpp): the
// portable one is always linked; the AVX-512 one exists only when the
// build could compile it (CL_GEMM_AVX512, set by src/CMakeLists.txt).
void gemm_tiled_rows_generic(const double* a, const double* b, double* out,
                             std::size_t row_begin, std::size_t row_end, std::size_t k_dim,
                             std::size_t p);
#ifdef CL_GEMM_AVX512
void gemm_tiled_rows_avx512(const double* a, const double* b, double* out,
                            std::size_t row_begin, std::size_t row_end, std::size_t k_dim,
                            std::size_t p);
#endif
}  // namespace detail

namespace {

std::atomic<GemmKernel> g_gemm_kernel{GemmKernel::kTiled};

using GemmRowsFn = void (*)(const double*, const double*, double*, std::size_t, std::size_t,
                            std::size_t, std::size_t);

// Resolve the widest tiled instantiation this host can execute. Both
// produce identical bits; this is a throughput choice only, made once.
GemmRowsFn resolve_tiled_kernel() {
#if defined(CL_GEMM_AVX512) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx512f")) return &detail::gemm_tiled_rows_avx512;
#endif
  return &detail::gemm_tiled_rows_generic;
}

const GemmRowsFn g_tiled_rows = resolve_tiled_kernel();

}  // namespace

void Matrix::set_gemm_kernel(GemmKernel k) {
  g_gemm_kernel.store(k, std::memory_order_relaxed);
}

GemmKernel Matrix::gemm_kernel() { return g_gemm_kernel.load(std::memory_order_relaxed); }

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows * cols)
    throw std::invalid_argument("Matrix: data size does not match dimensions");
}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) throw std::invalid_argument("Matrix::from_rows: empty input");
  const std::size_t cols = rows[0].size();
  Matrix m(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != cols)
      throw std::invalid_argument("Matrix::from_rows: ragged rows");
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix: index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix: index out of range");
  return data_[r * cols_ + c];
}

std::vector<double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row: index out of range");
  return std::vector<double>(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                             data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

void Matrix::set_row(std::size_t r, const std::vector<double>& values) {
  if (r >= rows_) throw std::out_of_range("Matrix::set_row: index out of range");
  if (values.size() != cols_) throw std::invalid_argument("Matrix::set_row: width mismatch");
  std::copy(values.begin(), values.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::matmul(const Matrix& other) const {
  Matrix out(rows_, other.cols_);
  // A fresh Matrix is zero-filled, so accumulating over every row is exactly
  // the historical matmul — one shared kernel keeps the bit patterns aligned.
  matmul_rows_accumulate(other, out, 0, rows_);
  return out;
}

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);  // vector never shrinks capacity on resize
}

void Matrix::matmul_rows_into(const Matrix& other, Matrix& out, std::size_t row_begin,
                              std::size_t row_end) const {
  std::fill(out.data_.begin() + static_cast<std::ptrdiff_t>(row_begin * out.cols_),
            out.data_.begin() + static_cast<std::ptrdiff_t>(row_end * out.cols_), 0.0);
  matmul_rows_accumulate(other, out, row_begin, row_end);
}

void Matrix::matmul_rows_accumulate(const Matrix& other, Matrix& out, std::size_t row_begin,
                                    std::size_t row_end) const {
  if (cols_ != other.rows_)
    throw std::invalid_argument("Matrix::matmul: inner dimension mismatch (" +
                                std::to_string(cols_) + " vs " + std::to_string(other.rows_) +
                                ")");
  if (out.rows_ != rows_ || out.cols_ != other.cols_)
    throw std::invalid_argument("Matrix::matmul: output shape mismatch");
  if (row_end > rows_ || row_begin > row_end)
    throw std::out_of_range("Matrix::matmul: row range out of range");
#ifndef NDEBUG
  debug_check_finite("matmul left operand");
  other.debug_check_finite("matmul right operand");
#endif
  // Degenerate shapes never dereference operand storage (an all-zero A row
  // could otherwise still form &other.data_[0] on an empty vector).
  if (row_begin == row_end || cols_ == 0 || other.cols_ == 0) return;
  // Both kernels share the per-element contract: out(i,j) accumulates its
  // products in ascending-k order, in place, with the `a == 0.0` left-operand
  // skip. That skip is load-bearing twice over: it is the perf win on sparse
  // (post-ReLU / zero-padded im2col) left operands, and the convolution
  // kernels rely on it matching the naive kernels' `v != 0.0` / `g == 0.0`
  // skips term-for-term. It silently drops 0*inf = NaN, hence the finite-
  // input contract asserted above in debug builds.
  if (other.cols_ == 1) {
    // Single-column fast path (e.g. the transposed-conv GEMM of a 1-channel
    // input layer): each out(i,0) still accumulates ascending-k with the same
    // zero-skip, so the bit pattern is unchanged — a register accumulator just
    // removes the per-term store/reload that dominates when the j loop is
    // one iteration long.
    for (std::size_t i = row_begin; i < row_end; ++i) {
      const double* arow = &data_[i * cols_];
      double acc = out.data_[i];
      for (std::size_t k = 0; k < cols_; ++k) {
        const double a = arow[k];
        if (a == 0.0) continue;
        acc += a * other.data_[k];
      }
      out.data_[i] = acc;
    }
    return;
  }
  if (gemm_kernel() == GemmKernel::kRowMajorReference) {
    // Historical i-k-j loop: stride-1 over both operands, but for every
    // output row it re-streams all of B — the L2 miss bill that motivates
    // the tiled kernel below.
    for (std::size_t i = row_begin; i < row_end; ++i) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const double a = data_[i * cols_ + k];
        if (a == 0.0) continue;
        const double* brow = &other.data_[k * other.cols_];
        double* orow = &out.data_[i * other.cols_];
        for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
      }
    }
    return;
  }
  // Cache-blocked kernel (nn/gemm_tiled.hpp): (j, k) panels with row-quad
  // register blocking, order-preserving by construction — every out(i,j)
  // receives the same ascending-k add sequence as the reference loop above,
  // so the bits are identical (tests/test_gemm_tiled.cpp).
  g_tiled_rows(data_.data(), other.data_.data(), out.data_.data(), row_begin, row_end, cols_,
               other.cols_);
}

void Matrix::debug_check_finite(const char* what) const {
  for (double v : data_) {
    if (!std::isfinite(v))
      throw std::domain_error(std::string("Matrix: non-finite value in ") + what +
                              " violates the finite-input contract");
  }
}

void Matrix::check_same_shape(const Matrix& other, const char* op) const {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument(std::string("Matrix::") + op + ": shape mismatch");
}

Matrix& Matrix::operator+=(const Matrix& other) {
  check_same_shape(other, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  check_same_shape(other, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::hadamard(const Matrix& other) const {
  check_same_shape(other, "hadamard");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * other.data_[i];
  return out;
}

Matrix Matrix::map(const std::function<double(double)>& f) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = f(data_[i]);
  return out;
}

void Matrix::add_row_broadcast(const Matrix& row_vec) {
  if (row_vec.rows_ != 1 || row_vec.cols_ != cols_)
    throw std::invalid_argument("Matrix::add_row_broadcast: expected 1 x cols vector");
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) data_[r * cols_ + c] += row_vec.data_[c];
}

Matrix Matrix::column_sums() const {
  Matrix out(1, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out.data_[c] += data_[r * cols_ + c];
  return out;
}

void Matrix::fill(double value) { std::fill(data_.begin(), data_.end(), value); }

double Matrix::squared_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

}  // namespace crowdlearn::nn
