// AVX-512 instantiation of the tiled GEMM body. This TU is added by
// src/CMakeLists.txt only when the compiler accepts -mavx512f, and is
// compiled with:
//   -mavx512f -mprefer-vector-width=512   full-width vectors (GCC would
//                                         otherwise stay at 256 bits)
//   -ffp-contract=off                     NO fused multiply-add — an FMA
//                                         rounds once, the bit-identity
//                                         contract requires mul then add
// Matrix dispatches here only when __builtin_cpu_supports("avx512f") says
// the host can run it; otherwise the generic TU serves. Both produce the
// same bits (tests/test_gemm_tiled.cpp) — this one is just wider.
#include "nn/gemm_tiled.hpp"

namespace crowdlearn::nn::detail {

void gemm_tiled_rows_avx512(const double* a, const double* b, double* out,
                            std::size_t row_begin, std::size_t row_end, std::size_t k_dim,
                            std::size_t p) {
  gemm_tiled_rows(a, b, out, row_begin, row_end, k_dim, p);
}

}  // namespace crowdlearn::nn::detail
