#pragma once
// Model persistence for Sequential networks.
//
// Text format, one token stream: a header, the layer count, then per layer
// its type tag, structural configuration and (for trainable layers) the
// learned parameters. Doubles are written with max_digits10 precision so a
// save/load round trip reproduces predictions bit-for-bit. The format is
// versioned; loading rejects unknown versions and malformed streams with
// std::runtime_error.

#include <iosfwd>
#include <string>

#include "nn/sequential.hpp"

namespace crowdlearn::nn {

inline constexpr int kModelFormatVersion = 1;

/// Serialize a model (architecture + learned parameters).
void save_model(const Sequential& model, std::ostream& os);

/// Reconstruct a model saved with save_model. Throws std::runtime_error on
/// malformed input, unknown layer tags, or version mismatch.
Sequential load_model(std::istream& is);

/// File-based convenience wrappers. Throw std::runtime_error if the file
/// cannot be opened.
void save_model_file(const Sequential& model, const std::string& path);
Sequential load_model_file(const std::string& path);

}  // namespace crowdlearn::nn
