#include "nn/workspace.hpp"

#include <algorithm>
#include <stdexcept>

namespace crowdlearn::nn {

Matrix& Workspace::buffer(std::size_t layer_id, std::size_t slot, std::size_t rows,
                          std::size_t cols) {
  if (slot >= 256) throw std::invalid_argument("Workspace::buffer: slot out of range");
  const std::uint64_t key = (static_cast<std::uint64_t>(layer_id) << 8) | slot;
  for (auto& [k, m] : buffers_) {
    if (k == key) {
      const std::size_t needed = rows * cols;
      if (needed > m->data().capacity()) {
        // Geometric growth: a serving workload that ramps batch sizes
        // (1 -> 64 -> 1024 images through the coalescer) would otherwise
        // reallocate-and-copy on every step up; doubling bounds the total
        // copy bill at O(final size) across any ramp.
        m->data().reserve(std::max(needed, 2 * m->data().capacity()));
        ++grow_count_;
      }
      m->reshape(rows, cols);
      return *m;
    }
  }
  ++grow_count_;
  buffers_.emplace_back(key, std::make_unique<Matrix>(rows, cols));
  return *buffers_.back().second;
}

Matrix& Workspace::activation(std::size_t slot) {
  if (slot >= 2) throw std::invalid_argument("Workspace::activation: slot out of range");
  return activations_[slot];
}

}  // namespace crowdlearn::nn
