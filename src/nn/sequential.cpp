#include "nn/sequential.hpp"

#include <numeric>
#include <stdexcept>

#include "stats/distribution.hpp"

namespace crowdlearn::nn {

Sequential::Sequential() : ws_(std::make_unique<Workspace>()) {}

void Sequential::add(std::unique_ptr<Layer> layer) {
  if (!layer) throw std::invalid_argument("Sequential::add: null layer");
  if (!layers_.empty() && layers_.back()->output_size() != layer->input_size())
    throw std::invalid_argument("Sequential::add: size mismatch between " +
                                layers_.back()->name() + " and " + layer->name());
  layer->bind_workspace(ws_.get(), layers_.size());
  layers_.push_back(std::move(layer));
}

std::size_t Sequential::input_size() const {
  if (layers_.empty()) throw std::logic_error("Sequential: empty model");
  return layers_.front()->input_size();
}

std::size_t Sequential::output_size() const {
  if (layers_.empty()) throw std::logic_error("Sequential: empty model");
  return layers_.back()->output_size();
}

Matrix Sequential::forward(const Matrix& input, bool training) {
  return forward_ws(input, training);
}

const Matrix& Sequential::forward_ws(const Matrix& input, bool training) {
  if (layers_.empty()) throw std::logic_error("Sequential: empty model");
  const Matrix* cur = &input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Matrix& out = ws_->activation(i % 2);
    layers_[i]->forward_into(*cur, out, training);
    cur = &out;
  }
  return *cur;
}

Matrix Sequential::predict_proba(const Matrix& input) {
  return softmax(forward_ws(input, /*training=*/false));
}

std::vector<std::size_t> Sequential::predict(const Matrix& input) {
  const Matrix probs = predict_proba(input);
  std::vector<std::size_t> out(probs.rows());
  for (std::size_t r = 0; r < probs.rows(); ++r)
    out[r] = crowdlearn::stats::argmax(probs.row(r));
  return out;
}

Sequential Sequential::clone() const {
  Sequential copy;
  for (const auto& layer : layers_) {
    auto cloned = layer->clone();
    cloned->bind_workspace(copy.ws_.get(), copy.layers_.size());
    copy.layers_.push_back(std::move(cloned));
  }
  return copy;
}

std::vector<Param> Sequential::params() {
  std::vector<Param> all;
  for (auto& layer : layers_)
    for (Param p : layer->params()) all.push_back(p);
  return all;
}

std::size_t Sequential::num_parameters() {
  std::size_t n = 0;
  for (const Param& p : params()) n += p.value->size();
  return n;
}

template <typename MakeLoss>
std::vector<EpochStats> Sequential::fit_impl(const Matrix& x, std::size_t n,
                                             const TrainConfig& cfg, Rng& rng,
                                             MakeLoss&& make_loss) {
  if (n == 0) throw std::invalid_argument("Sequential::fit: empty training set");
  if (cfg.batch_size == 0) throw std::invalid_argument("Sequential::fit: batch_size == 0");

  std::unique_ptr<Optimizer> opt;
  if (cfg.optimizer == OptimizerKind::kAdam)
    opt = std::make_unique<Adam>(cfg.learning_rate);
  else
    opt = std::make_unique<Sgd>(cfg.learning_rate, cfg.momentum, cfg.weight_decay);
  opt->attach(params());

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});

  std::vector<EpochStats> history;
  history.reserve(cfg.epochs);
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    if (cfg.shuffle) rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t correct = 0, seen = 0, batches = 0;

    for (std::size_t start = 0; start < n; start += cfg.batch_size) {
      const std::size_t end = std::min(start + cfg.batch_size, n);
      const std::size_t bsz = end - start;
      Matrix xb(bsz, x.cols());
      std::vector<std::size_t> batch_indices(bsz);
      for (std::size_t i = 0; i < bsz; ++i) {
        batch_indices[i] = order[start + i];
        xb.set_row(i, x.row(order[start + i]));
      }

      const Matrix& logits = forward_ws(xb, /*training=*/true);
      // make_loss returns (LossResult, vector of hard labels for accuracy).
      auto [loss, hard] = make_loss(logits, batch_indices);
      loss_sum += loss.loss;
      ++batches;
      for (std::size_t i = 0; i < bsz; ++i) {
        if (crowdlearn::stats::argmax(loss.probabilities.row(i)) == hard[i]) ++correct;
        ++seen;
      }

      Matrix grad = loss.grad_logits;
      for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) grad = (*it)->backward(grad);
      opt->step();
    }
    history.push_back({loss_sum / static_cast<double>(batches),
                       static_cast<double>(correct) / static_cast<double>(seen)});
  }
  return history;
}

std::vector<EpochStats> Sequential::fit(const Matrix& x, const std::vector<std::size_t>& y,
                                        const TrainConfig& cfg, Rng& rng) {
  if (y.size() != x.rows()) throw std::invalid_argument("Sequential::fit: label count mismatch");
  return fit_impl(x, x.rows(), cfg, rng,
                  [&](const Matrix& logits, const std::vector<std::size_t>& idx) {
                    std::vector<std::size_t> yb(idx.size());
                    for (std::size_t i = 0; i < idx.size(); ++i) yb[i] = y[idx[i]];
                    return std::pair(softmax_cross_entropy(logits, yb), yb);
                  });
}

std::vector<EpochStats> Sequential::fit_soft(const Matrix& x, const Matrix& targets,
                                             const TrainConfig& cfg, Rng& rng) {
  if (targets.rows() != x.rows())
    throw std::invalid_argument("Sequential::fit_soft: target count mismatch");
  return fit_impl(x, x.rows(), cfg, rng,
                  [&](const Matrix& logits, const std::vector<std::size_t>& idx) {
                    Matrix tb(idx.size(), targets.cols());
                    std::vector<std::size_t> hard(idx.size());
                    for (std::size_t i = 0; i < idx.size(); ++i) {
                      tb.set_row(i, targets.row(idx[i]));
                      hard[i] = crowdlearn::stats::argmax(targets.row(idx[i]));
                    }
                    return std::pair(softmax_cross_entropy_soft(logits, tb), hard);
                  });
}

}  // namespace crowdlearn::nn
