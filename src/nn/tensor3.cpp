#include "nn/tensor3.hpp"

#include <stdexcept>

namespace crowdlearn::nn {

std::size_t Shape3::flat(std::size_t c, std::size_t y, std::size_t x) const {
  if (c >= channels || y >= height || x >= width)
    throw std::out_of_range("Shape3::flat: index out of range");
  return (c * height + y) * width + x;
}

Tensor3::Tensor3(Shape3 shape, double fill) : shape_(shape), data_(shape.size(), fill) {}

Tensor3::Tensor3(Shape3 shape, std::vector<double> data)
    : shape_(shape), data_(std::move(data)) {
  if (data_.size() != shape_.size())
    throw std::invalid_argument("Tensor3: data size does not match shape");
}

double& Tensor3::at(std::size_t c, std::size_t y, std::size_t x) {
  return data_[shape_.flat(c, y, x)];
}

double Tensor3::at(std::size_t c, std::size_t y, std::size_t x) const {
  return data_[shape_.flat(c, y, x)];
}

double Tensor3::channel_mean(std::size_t c) const {
  if (c >= shape_.channels) throw std::out_of_range("Tensor3::channel_mean: bad channel");
  const std::size_t hw = shape_.height * shape_.width;
  double s = 0.0;
  for (std::size_t i = 0; i < hw; ++i) s += data_[c * hw + i];
  return hw == 0 ? 0.0 : s / static_cast<double>(hw);
}

}  // namespace crowdlearn::nn
