#pragma once
// Dense row-major matrix of doubles — the numeric workhorse for the
// from-scratch neural-network library. Sized for the small models this
// reproduction trains (16x16 inputs, tiny CNN/MLPs), so clarity is favored
// over blocking/vectorization tricks.

#include <cstddef>
#include <functional>
#include <vector>

namespace crowdlearn::nn {

/// Which GEMM kernel backs the matmul family. kTiled (the default) is the
/// cache-blocked kernel that carries serving-scale batches;
/// kRowMajorReference is the original i-k-j loop, retained as the readable
/// spec and the differential-test / perf-regression baseline. The tiling is
/// order-preserving — every out(i,j) still receives its products in
/// ascending-k order, with the same zero-skip — so the two kernels produce
/// byte-identical outputs (tests/test_gemm_tiled.cpp).
enum class GemmKernel { kTiled, kRowMajorReference };

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Copy of row r as a vector.
  std::vector<double> row(std::size_t r) const;
  void set_row(std::size_t r, const std::vector<double>& values);

  Matrix transpose() const;

  /// Matrix product: (m x n) * (n x p) -> (m x p).
  Matrix matmul(const Matrix& other) const;

  /// Reshape in place to rows x cols, reusing the existing allocation
  /// whenever the new element count fits the current capacity. Element
  /// contents after the call are unspecified (callers overwrite); the
  /// workspace buffers rely on this never shrinking capacity.
  void reshape(std::size_t rows, std::size_t cols);

  /// Partial matmul: zero-fill rows [row_begin, row_end) of `out`, then
  /// accumulate out.row(i) += sum_k (*this)(i,k) * other.row(k) in ascending
  /// k with the same `a == 0.0` left-operand skip as matmul(). `out` must be
  /// pre-shaped to rows() x other.cols(). Calling this over a partition of
  /// [0, rows()) — in any order, from any thread — produces exactly the bits
  /// matmul() would: each output row's term sequence is self-contained.
  void matmul_rows_into(const Matrix& other, Matrix& out, std::size_t row_begin,
                        std::size_t row_end) const;

  /// Like matmul_rows_into but accumulates into `out`'s existing contents —
  /// callers pre-seed bias terms so the per-element accumulation order is
  /// bias first, then ascending-k products (the naive convolution order).
  void matmul_rows_accumulate(const Matrix& other, Matrix& out, std::size_t row_begin,
                              std::size_t row_end) const;

  /// Process-wide GEMM kernel selector for tests and benchmarks — mirrors
  /// Conv2D::set_kernel_mode. Not for use while matmuls are in flight on
  /// other threads.
  static void set_gemm_kernel(GemmKernel k);
  static GemmKernel gemm_kernel();

  /// Throw std::domain_error if any entry is non-finite. The matmul kernels
  /// skip zero left operands, which silently drops 0*inf = NaN propagation —
  /// that shortcut is only sound under a finite-input contract, checked here
  /// in debug builds (and callable directly from tests in any build).
  void debug_check_finite(const char* what) const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Element-wise product (Hadamard).
  Matrix hadamard(const Matrix& other) const;

  /// Apply f to every element, returning a new matrix.
  Matrix map(const std::function<double(double)>& f) const;

  /// Add a row vector (1 x cols) to every row; used for biases.
  void add_row_broadcast(const Matrix& row_vec);

  /// Column-wise sum, returning a (1 x cols) matrix; used for bias grads.
  Matrix column_sums() const;

  void fill(double value);

  /// Sum of squares of all entries (for regularization / grad-norm checks).
  double squared_norm() const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;

  void check_same_shape(const Matrix& other, const char* op) const;
};

}  // namespace crowdlearn::nn
