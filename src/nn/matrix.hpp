#pragma once
// Dense row-major matrix of doubles — the numeric workhorse for the
// from-scratch neural-network library. Sized for the small models this
// reproduction trains (16x16 inputs, tiny CNN/MLPs), so clarity is favored
// over blocking/vectorization tricks.

#include <cstddef>
#include <functional>
#include <vector>

namespace crowdlearn::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Copy of row r as a vector.
  std::vector<double> row(std::size_t r) const;
  void set_row(std::size_t r, const std::vector<double>& values);

  Matrix transpose() const;

  /// Matrix product: (m x n) * (n x p) -> (m x p).
  Matrix matmul(const Matrix& other) const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Element-wise product (Hadamard).
  Matrix hadamard(const Matrix& other) const;

  /// Apply f to every element, returning a new matrix.
  Matrix map(const std::function<double(double)>& f) const;

  /// Add a row vector (1 x cols) to every row; used for biases.
  void add_row_broadcast(const Matrix& row_vec);

  /// Column-wise sum, returning a (1 x cols) matrix; used for bias grads.
  Matrix column_sums() const;

  void fill(double value);

  /// Sum of squares of all entries (for regularization / grad-norm checks).
  double squared_norm() const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;

  void check_same_shape(const Matrix& other, const char* op) const;
};

}  // namespace crowdlearn::nn
