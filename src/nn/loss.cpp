#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace crowdlearn::nn {

Matrix softmax(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    double mx = logits(r, 0);
    for (std::size_t c = 1; c < logits.cols(); ++c) mx = std::max(mx, logits(r, c));
    double denom = 0.0;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      out(r, c) = std::exp(logits(r, c) - mx);
      denom += out(r, c);
    }
    for (std::size_t c = 0; c < logits.cols(); ++c) out(r, c) /= denom;
  }
  return out;
}

LossResult softmax_cross_entropy(const Matrix& logits, const std::vector<std::size_t>& labels) {
  if (labels.size() != logits.rows())
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  LossResult res;
  res.probabilities = softmax(logits);
  res.grad_logits = res.probabilities;
  const double inv_batch = 1.0 / static_cast<double>(logits.rows());
  double total = 0.0;
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    if (labels[r] >= logits.cols())
      throw std::out_of_range("softmax_cross_entropy: label out of range");
    total -= std::log(std::max(res.probabilities(r, labels[r]), 1e-12));
    res.grad_logits(r, labels[r]) -= 1.0;
  }
  res.grad_logits *= inv_batch;
  res.loss = total * inv_batch;
  return res;
}

LossResult softmax_cross_entropy_soft(const Matrix& logits, const Matrix& targets) {
  if (targets.rows() != logits.rows() || targets.cols() != logits.cols())
    throw std::invalid_argument("softmax_cross_entropy_soft: shape mismatch");
  LossResult res;
  res.probabilities = softmax(logits);
  res.grad_logits = res.probabilities;
  res.grad_logits -= targets;
  const double inv_batch = 1.0 / static_cast<double>(logits.rows());
  double total = 0.0;
  for (std::size_t r = 0; r < logits.rows(); ++r)
    for (std::size_t c = 0; c < logits.cols(); ++c)
      if (targets(r, c) > 0.0)
        total -= targets(r, c) * std::log(std::max(res.probabilities(r, c), 1e-12));
  res.grad_logits *= inv_batch;
  res.loss = total * inv_batch;
  return res;
}

}  // namespace crowdlearn::nn
