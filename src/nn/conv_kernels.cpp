#include "nn/conv_kernels.hpp"

#include <algorithm>

namespace crowdlearn::nn::kernels {

namespace {

/// Zero-padded element read shared by the naive kernels (the original
/// Conv2D::input_at, hoisted out of the class).
double input_at(const Matrix& batch, const Shape3& shape, std::size_t sample, std::size_t c,
                long y, long x) {
  if (y < 0 || x < 0 || y >= static_cast<long>(shape.height) ||
      x >= static_cast<long>(shape.width))
    return 0.0;  // zero padding
  const std::size_t flat =
      shape.flat(c, static_cast<std::size_t>(y), static_cast<std::size_t>(x));
  return batch(sample, flat);
}

}  // namespace

void naive_conv2d_forward(const ConvGeometry& g, const Matrix& w, const Matrix& b,
                          const Matrix& input, Matrix& out) {
  const std::size_t batch = input.rows();
  for (std::size_t s = 0; s < batch; ++s) {
    for (std::size_t oc = 0; oc < g.out.channels; ++oc) {
      for (std::size_t y = 0; y < g.out.height; ++y) {
        for (std::size_t x = 0; x < g.out.width; ++x) {
          double acc = b(0, oc);
          for (std::size_t ic = 0; ic < g.in.channels; ++ic) {
            for (std::size_t ky = 0; ky < g.k; ++ky) {
              for (std::size_t kx = 0; kx < g.k; ++kx) {
                const long iy = static_cast<long>(y + ky) - static_cast<long>(g.pad);
                const long ix = static_cast<long>(x + kx) - static_cast<long>(g.pad);
                const double v = input_at(input, g.in, s, ic, iy, ix);
                if (v != 0.0) acc += v * w(oc, (ic * g.k + ky) * g.k + kx);
              }
            }
          }
          out(s, g.out.flat(oc, y, x)) = acc;
        }
      }
    }
  }
}

void naive_conv2d_backward(const ConvGeometry& g, const Matrix& w, const Matrix& cached_input,
                           const Matrix& grad_output, Matrix& grad_input, Matrix& dw,
                           Matrix& db) {
  const std::size_t batch = cached_input.rows();
  grad_input.fill(0.0);
  for (std::size_t s = 0; s < batch; ++s) {
    for (std::size_t oc = 0; oc < g.out.channels; ++oc) {
      for (std::size_t y = 0; y < g.out.height; ++y) {
        for (std::size_t x = 0; x < g.out.width; ++x) {
          const double grad = grad_output(s, g.out.flat(oc, y, x));
          if (grad == 0.0) continue;
          db(0, oc) += grad;
          for (std::size_t ic = 0; ic < g.in.channels; ++ic) {
            for (std::size_t ky = 0; ky < g.k; ++ky) {
              for (std::size_t kx = 0; kx < g.k; ++kx) {
                const long iy = static_cast<long>(y + ky) - static_cast<long>(g.pad);
                const long ix = static_cast<long>(x + kx) - static_cast<long>(g.pad);
                if (iy < 0 || ix < 0 || iy >= static_cast<long>(g.in.height) ||
                    ix >= static_cast<long>(g.in.width))
                  continue;
                const std::size_t in_flat = g.in.flat(ic, static_cast<std::size_t>(iy),
                                                      static_cast<std::size_t>(ix));
                const std::size_t w_col = (ic * g.k + ky) * g.k + kx;
                dw(oc, w_col) += grad * cached_input(s, in_flat);
                grad_input(s, in_flat) += grad * w(oc, w_col);
              }
            }
          }
        }
      }
    }
  }
}

void im2col_rows(const Matrix& src, const Shape3& shape, std::size_t k, std::size_t pad,
                 Matrix& cols, std::size_t sample_begin, std::size_t sample_end) {
  const std::size_t H = shape.height, W = shape.width, C = shape.channels;
  const std::size_t hw = H * W;
  const std::size_t ckk = C * k * k;
  for (std::size_t s = sample_begin; s < sample_end; ++s) {
    const double* srow = &src.data()[s * src.cols()];
    double* sample_rows = &cols.data()[s * hw * ckk];
    for (std::size_t y = 0; y < H; ++y) {
      for (std::size_t x = 0; x < W; ++x) {
        double* dst = sample_rows + (y * W + x) * ckk;
        for (std::size_t c = 0; c < C; ++c) {
          const double* chan = srow + c * hw;
          for (std::size_t ky = 0; ky < k; ++ky) {
            const long iy = static_cast<long>(y + ky) - static_cast<long>(pad);
            if (iy < 0 || iy >= static_cast<long>(H)) {
              for (std::size_t kx = 0; kx < k; ++kx) *dst++ = 0.0;
              continue;
            }
            const double* irow = chan + static_cast<std::size_t>(iy) * W;
            for (std::size_t kx = 0; kx < k; ++kx) {
              const long ix = static_cast<long>(x + kx) - static_cast<long>(pad);
              *dst++ = (ix < 0 || ix >= static_cast<long>(W))
                           ? 0.0
                           : irow[static_cast<std::size_t>(ix)];
            }
          }
        }
      }
    }
  }
}

void transpose_weights(const Matrix& w, Matrix& wt) {
  for (std::size_t r = 0; r < w.rows(); ++r) {
    const double* wrow = &w.data()[r * w.cols()];
    for (std::size_t c = 0; c < w.cols(); ++c) wt.data()[c * wt.cols() + r] = wrow[c];
  }
}

void flipped_weights(const ConvGeometry& g, const Matrix& w, Matrix& w2) {
  const std::size_t k = g.k;
  for (std::size_t oc = 0; oc < g.out.channels; ++oc) {
    const double* wrow = &w.data()[oc * w.cols()];
    for (std::size_t ky = 0; ky < k; ++ky) {
      for (std::size_t kx = 0; kx < k; ++kx) {
        double* dst = &w2.data()[((oc * k + ky) * k + kx) * w2.cols()];
        const std::size_t src_off = (k - 1 - ky) * k + (k - 1 - kx);
        for (std::size_t ic = 0; ic < g.in.channels; ++ic)
          dst[ic] = wrow[ic * k * k + src_off];
      }
    }
  }
}

void fill_bias_rows(const Matrix& b, Matrix& om, std::size_t row_begin, std::size_t row_end) {
  const std::size_t oc_n = om.cols();
  const double* brow = b.data().data();
  for (std::size_t r = row_begin; r < row_end; ++r) {
    double* orow = &om.data()[r * oc_n];
    for (std::size_t c = 0; c < oc_n; ++c) orow[c] = brow[c];
  }
}

void scatter_channel_major(const Matrix& panel, Matrix& dst, std::size_t channels,
                           std::size_t hw, std::size_t sample_begin, std::size_t sample_end) {
  for (std::size_t s = sample_begin; s < sample_end; ++s) {
    double* drow = &dst.data()[s * dst.cols()];
    const double* prow = &panel.data()[s * hw * channels];
    for (std::size_t p = 0; p < hw; ++p)
      for (std::size_t c = 0; c < channels; ++c) drow[c * hw + p] = prow[p * channels + c];
  }
}

void conv2d_weight_grad(const ConvGeometry& g, const Matrix& cols, const Matrix& grad_output,
                        Matrix& dw, Matrix& db, std::size_t oc_begin, std::size_t oc_end) {
  const std::size_t H = g.out.height, W = g.out.width;
  const std::size_t hw = H * W;
  const std::size_t k = g.k, pad = g.pad;
  const std::size_t C = g.in.channels;
  const std::size_t ckk = C * k * k;
  const std::size_t batch = grad_output.rows();
  for (std::size_t oc = oc_begin; oc < oc_end; ++oc) {
    double* dwrow = &dw.data()[oc * ckk];
    double& dbv = db.data()[oc];
    // Per (oc, column) target the terms arrive samples-then-positions
    // ascending — the naive s, y, x visit order — so reordering oc to the
    // outside (for disjoint parallel chunks) never reorders any one
    // accumulator's sum.
    for (std::size_t s = 0; s < batch; ++s) {
      const double* grow = &grad_output.data()[s * grad_output.cols() + oc * hw];
      const double* sample_rows = &cols.data()[s * hw * ckk];
      for (std::size_t y = 0; y < H; ++y) {
        const std::size_t ky_lo = pad > y ? pad - y : 0;
        const std::size_t ky_hi = std::min(k, H + pad - y);  // exclusive
        for (std::size_t x = 0; x < W; ++x) {
          const double grad = grow[y * W + x];
          if (grad == 0.0) continue;
          dbv += grad;
          const std::size_t kx_lo = pad > x ? pad - x : 0;
          const std::size_t kx_hi = std::min(k, W + pad - x);
          const double* crow = sample_rows + (y * W + x) * ckk;
          // Only in-bounds (ky, kx) columns: the naive kernel adds every
          // in-bounds product (zeros included) but never touches padding
          // positions, and dw must match it bit-for-bit — a padded 0.0 term
          // could still flip a -0.0 accumulator to +0.0.
          for (std::size_t c = 0; c < C; ++c) {
            for (std::size_t ky = ky_lo; ky < ky_hi; ++ky) {
              const std::size_t base = (c * k + ky) * k;
              for (std::size_t kx = kx_lo; kx < kx_hi; ++kx)
                dwrow[base + kx] += grad * crow[base + kx];
            }
          }
        }
      }
    }
  }
}

void conv2d_grad_input_scatter(const ConvGeometry& g, const Matrix& w,
                               const Matrix& grad_output, Matrix& grad_input,
                               std::size_t sample_begin, std::size_t sample_end) {
  const std::size_t H = g.out.height, W = g.out.width;
  const std::size_t k = g.k, pad = g.pad;
  const std::size_t C = g.in.channels;
  const std::size_t in_hw = g.in.height * g.in.width;
  for (std::size_t s = sample_begin; s < sample_end; ++s) {
    const double* gsample = &grad_output.data()[s * grad_output.cols()];
    double* irow = &grad_input.data()[s * grad_input.cols()];
    for (std::size_t oc = 0; oc < g.out.channels; ++oc) {
      const double* grow = gsample + oc * H * W;
      const double* wrow = &w.data()[oc * w.cols()];
      for (std::size_t y = 0; y < H; ++y) {
        const std::size_t ky_lo = pad > y ? pad - y : 0;
        const std::size_t ky_hi = std::min(k, g.in.height + pad - y);  // exclusive
        for (std::size_t x = 0; x < W; ++x) {
          const double grad = grow[y * W + x];
          if (grad == 0.0) continue;
          const std::size_t kx_lo = pad > x ? pad - x : 0;
          const std::size_t kx_hi = std::min(k, g.in.width + pad - x);
          for (std::size_t c = 0; c < C; ++c) {
            double* ichan = irow + c * in_hw;
            for (std::size_t ky = ky_lo; ky < ky_hi; ++ky) {
              const std::size_t iy = y + ky - pad;
              const double* wseg = wrow + (c * k + ky) * k + kx_lo;
              double* idst = ichan + iy * g.in.width + (x + kx_lo - pad);
              for (std::size_t kx = 0; kx < kx_hi - kx_lo; ++kx)
                idst[kx] += grad * wseg[kx];
            }
          }
        }
      }
    }
  }
}

}  // namespace crowdlearn::nn::kernels
