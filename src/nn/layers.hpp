#pragma once
// Layer abstraction for the from-scratch neural-network library.
//
// Batches are Matrix objects with one sample per row. Layers that care about
// spatial structure (Conv2D, MaxPool2D in conv.hpp) interpret each row as a
// flattened channel-major (C, H, W) block via Shape3.

#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace crowdlearn::nn {

class Workspace;

/// A learnable parameter: value and accumulated gradient, exposed to the
/// optimizer by non-owning pointer (the layer owns the storage).
struct Param {
  Matrix* value = nullptr;
  Matrix* grad = nullptr;
  std::string name;
};

/// Base class for all layers. forward() must be called before backward();
/// layers may cache activations from the most recent forward pass.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute outputs for a batch. `training` toggles dropout-style behavior.
  virtual Matrix forward(const Matrix& input, bool training) = 0;

  /// Allocation-free forward: write the batch output into `out`, reshaping
  /// it (capacity is reused across calls). `out` must not alias `input`.
  /// The default wraps forward(); the hot layers override it to write into
  /// reusable storage directly. Semantics and bit patterns are identical to
  /// forward() either way.
  virtual void forward_into(const Matrix& input, Matrix& out, bool training) {
    out = forward(input, training);
  }

  /// Attach shared scratch storage (and through it the thread pool the
  /// kernels chunk over). `layer_id` namespaces this layer's buffers inside
  /// the workspace. Sequential binds every layer it owns; the default is a
  /// no-op for layers that need no scratch. The workspace must outlive the
  /// layer's use of it; passing nullptr detaches.
  virtual void bind_workspace(Workspace* /*ws*/, std::size_t /*layer_id*/) {}

  /// Backpropagate: given dL/d(output), accumulate parameter gradients and
  /// return dL/d(input).
  virtual Matrix backward(const Matrix& grad_output) = 0;

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<Param> params() { return {}; }

  virtual std::size_t input_size() const = 0;
  virtual std::size_t output_size() const = 0;
  virtual std::string name() const = 0;

  /// Deep copy, including learned parameters (gradients and activation
  /// caches copy along but are irrelevant to the clone's future use).
  virtual std::unique_ptr<Layer> clone() const = 0;
};

/// Fully connected layer: y = x W + b, with He-uniform initialization.
class Dense : public Layer {
 public:
  Dense(std::size_t in, std::size_t out, Rng& rng);
  /// Copies learned state; the workspace binding stays with the original
  /// (Sequential::clone rebinds its copies to the clone's workspace).
  Dense(const Dense& o)
      : in_(o.in_), out_(o.out_), w_(o.w_), b_(o.b_), dw_(o.dw_), db_(o.db_),
        cached_input_(o.cached_input_) {}

  Matrix forward(const Matrix& input, bool training) override;
  void forward_into(const Matrix& input, Matrix& out, bool training) override;
  void bind_workspace(Workspace* ws, std::size_t /*layer_id*/) override { ws_ = ws; }
  Matrix backward(const Matrix& grad_output) override;
  std::vector<Param> params() override;
  std::size_t input_size() const override { return in_; }
  std::size_t output_size() const override { return out_; }
  std::string name() const override { return "Dense"; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Dense>(*this); }

  const Matrix& weights() const { return w_; }
  const Matrix& bias() const { return b_; }
  Matrix& weights() { return w_; }
  Matrix& bias() { return b_; }

 private:
  std::size_t in_, out_;
  Matrix w_, b_;
  Matrix dw_, db_;
  Matrix cached_input_;
  Workspace* ws_ = nullptr;  ///< not owned; only consulted for the pool
};

/// Rectified linear unit.
class ReLU : public Layer {
 public:
  explicit ReLU(std::size_t size) : size_(size) {}

  Matrix forward(const Matrix& input, bool training) override;
  void forward_into(const Matrix& input, Matrix& out, bool training) override;
  Matrix backward(const Matrix& grad_output) override;
  std::size_t input_size() const override { return size_; }
  std::size_t output_size() const override { return size_; }
  std::string name() const override { return "ReLU"; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<ReLU>(*this); }

 private:
  std::size_t size_;
  Matrix cached_input_;
};

/// Hyperbolic tangent.
class Tanh : public Layer {
 public:
  explicit Tanh(std::size_t size) : size_(size) {}

  Matrix forward(const Matrix& input, bool training) override;
  void forward_into(const Matrix& input, Matrix& out, bool training) override;
  Matrix backward(const Matrix& grad_output) override;
  std::size_t input_size() const override { return size_; }
  std::size_t output_size() const override { return size_; }
  std::string name() const override { return "Tanh"; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Tanh>(*this); }

 private:
  std::size_t size_;
  Matrix cached_output_;
};

/// Inverted dropout: active only when training; scales kept activations by
/// 1/(1-p) so inference needs no correction.
class Dropout : public Layer {
 public:
  Dropout(std::size_t size, double rate, Rng& rng);

  Matrix forward(const Matrix& input, bool training) override;
  void forward_into(const Matrix& input, Matrix& out, bool training) override;
  Matrix backward(const Matrix& grad_output) override;
  std::size_t input_size() const override { return size_; }
  std::size_t output_size() const override { return size_; }
  std::string name() const override { return "Dropout"; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Dropout>(*this); }
  double rate() const { return rate_; }

 private:
  std::size_t size_;
  double rate_;
  Rng rng_;
  Matrix mask_;
  bool last_training_ = false;
};

}  // namespace crowdlearn::nn
