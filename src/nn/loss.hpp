#pragma once
// Softmax + cross-entropy, fused for numerical stability. Supports both
// hard integer targets and soft target distributions (the latter is used
// when retraining experts on CQC's probabilistic truth labels in MIC).

#include <cstddef>
#include <vector>

#include "nn/matrix.hpp"

namespace crowdlearn::nn {

/// Row-wise numerically-stable softmax.
Matrix softmax(const Matrix& logits);

struct LossResult {
  double loss = 0.0;       ///< mean cross-entropy over the batch
  Matrix grad_logits;      ///< dL/dlogits, already divided by batch size
  Matrix probabilities;    ///< softmax(logits)
};

/// Cross-entropy against hard labels.
LossResult softmax_cross_entropy(const Matrix& logits, const std::vector<std::size_t>& labels);

/// Cross-entropy against soft target distributions (one row per sample,
/// rows must be valid distributions).
LossResult softmax_cross_entropy_soft(const Matrix& logits, const Matrix& targets);

}  // namespace crowdlearn::nn
