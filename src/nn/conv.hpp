#pragma once
// Spatial layers: 2-D convolution ("same" padding, stride 1) and 2x2 max
// pooling. Samples are flattened channel-major (C, H, W) rows of a batch
// Matrix; each layer carries its input geometry in a Shape3.

#include <memory>

#include "nn/conv_kernels.hpp"
#include "nn/layers.hpp"
#include "nn/tensor3.hpp"

namespace crowdlearn::nn {

class Workspace;

/// Which convolution kernels Conv2D routes through. kIm2col (the default)
/// lowers to order-preserving GEMM calls over workspace buffers;
/// kNaiveReference is the original 7-deep loop, retained for the
/// equivalence tests and the perf-regression baseline benchmarks. The two
/// produce byte-identical outputs (tests/test_nn_kernels.cpp).
enum class ConvKernelMode { kIm2col, kNaiveReference };

/// 2-D convolution with square kernels, stride 1 and zero "same" padding so
/// the spatial dimensions are preserved. The compute path is im2col + GEMM
/// over reusable workspace buffers (see docs/PERFORMANCE.md); the original
/// naive kernels survive behind ConvKernelMode::kNaiveReference.
class Conv2D : public Layer {
 public:
  Conv2D(Shape3 input_shape, std::size_t out_channels, std::size_t kernel, Rng& rng);
  /// Copies learned state and the Grad-CAM activation cache; the workspace
  /// binding and retained backward scratch stay with the original
  /// (Sequential::clone rebinds its copies; backward on a fresh copy
  /// requires a fresh forward(training=true)).
  Conv2D(const Conv2D& o);
  Conv2D& operator=(const Conv2D&) = delete;
  // Out-of-line so unique_ptr<Workspace> can be destroyed where Workspace
  // is complete (conv.cpp), keeping this header light.
  ~Conv2D() override;

  Matrix forward(const Matrix& input, bool training) override;
  void forward_into(const Matrix& input, Matrix& out, bool training) override;
  Matrix backward(const Matrix& grad_output) override;
  void bind_workspace(Workspace* ws, std::size_t layer_id) override;
  std::vector<Param> params() override;

  std::size_t input_size() const override { return in_shape_.size(); }
  std::size_t output_size() const override { return out_shape_.size(); }
  std::string name() const override { return "Conv2D"; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Conv2D>(*this); }

  const Shape3& in_shape() const { return in_shape_; }
  const Shape3& out_shape() const { return out_shape_; }
  std::size_t kernel_size() const { return k_; }
  /// Kernel weights, shape (out_channels, in_channels * k * k) row-major.
  const Matrix& kernels() const { return w_; }
  Matrix& kernels() { return w_; }
  const Matrix& bias() const { return b_; }
  Matrix& bias() { return b_; }

  /// Activation map of one sample from the most recent forward pass, as a
  /// Tensor3 — used by the DDM expert's CAM-style heatmap (so it is kept at
  /// inference too, unlike the backward scratch).
  Tensor3 last_activation(std::size_t sample) const;

  /// Process-wide kernel selector for tests and benchmarks. Not for use
  /// while forward/backward passes are in flight on other threads.
  static void set_kernel_mode(ConvKernelMode m);
  static ConvKernelMode kernel_mode();

 private:
  Shape3 in_shape_, out_shape_;
  std::size_t k_;    // kernel side
  std::size_t pad_;  // (k - 1) / 2
  Matrix w_;         // (out_c, in_c * k * k)
  Matrix b_;         // (1, out_c)
  Matrix dw_, db_;
  Matrix cached_input_;   // naive mode only, and only when training
  Matrix cached_output_;  // Grad-CAM source; kept in every mode
  Workspace* ws_ = nullptr;            ///< not owned; bound by Sequential
  std::unique_ptr<Workspace> own_ws_;  ///< lazy fallback for standalone use
  std::size_t layer_id_ = 0;
  bool have_fwd_state_ = false;  ///< im2col cols retained for backward?
  std::size_t fwd_batch_ = 0;
  ConvKernelMode last_mode_ = ConvKernelMode::kIm2col;  ///< mode of last forward

  kernels::ConvGeometry geometry() const { return {in_shape_, out_shape_, k_, pad_}; }
  Workspace& scratch();
  void forward_im2col(const Matrix& input, Matrix& out, bool training);
  Matrix backward_im2col(const Matrix& grad_output);
};

/// 2x2 max pooling with stride 2. Requires even spatial dimensions.
class MaxPool2D : public Layer {
 public:
  explicit MaxPool2D(Shape3 input_shape);

  Matrix forward(const Matrix& input, bool training) override;
  void forward_into(const Matrix& input, Matrix& out, bool training) override;
  Matrix backward(const Matrix& grad_output) override;

  std::size_t input_size() const override { return in_shape_.size(); }
  std::size_t output_size() const override { return out_shape_.size(); }
  std::string name() const override { return "MaxPool2D"; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<MaxPool2D>(*this); }

  const Shape3& in_shape() const { return in_shape_; }
  const Shape3& out_shape() const { return out_shape_; }

 private:
  Shape3 in_shape_, out_shape_;
  // Flat input index chosen as the max for each output element; one flat
  // vector (batch * out size) so steady-state forwards never allocate.
  std::vector<std::size_t> argmax_;
  std::size_t argmax_batch_ = 0;
};

/// Global average pooling: each channel collapses to its spatial mean.
/// Used by the DDM expert (the CAM construction requires GAP + Dense).
class GlobalAvgPool : public Layer {
 public:
  explicit GlobalAvgPool(Shape3 input_shape);

  Matrix forward(const Matrix& input, bool training) override;
  void forward_into(const Matrix& input, Matrix& out, bool training) override;
  Matrix backward(const Matrix& grad_output) override;

  const Shape3& in_shape() const { return in_shape_; }
  std::size_t input_size() const override { return in_shape_.size(); }
  std::size_t output_size() const override { return in_shape_.channels; }
  std::string name() const override { return "GlobalAvgPool"; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<GlobalAvgPool>(*this); }

 private:
  Shape3 in_shape_;
};

}  // namespace crowdlearn::nn
