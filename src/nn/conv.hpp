#pragma once
// Spatial layers: 2-D convolution ("same" padding, stride 1) and 2x2 max
// pooling. Samples are flattened channel-major (C, H, W) rows of a batch
// Matrix; each layer carries its input geometry in a Shape3.

#include "nn/layers.hpp"
#include "nn/tensor3.hpp"

namespace crowdlearn::nn {

/// 2-D convolution with square kernels, stride 1 and zero "same" padding so
/// the spatial dimensions are preserved. Direct (non-im2col) implementation;
/// fine for the 16x16 inputs used in this reproduction.
class Conv2D : public Layer {
 public:
  Conv2D(Shape3 input_shape, std::size_t out_channels, std::size_t kernel, Rng& rng);

  Matrix forward(const Matrix& input, bool training) override;
  Matrix backward(const Matrix& grad_output) override;
  std::vector<Param> params() override;

  std::size_t input_size() const override { return in_shape_.size(); }
  std::size_t output_size() const override { return out_shape_.size(); }
  std::string name() const override { return "Conv2D"; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<Conv2D>(*this); }

  const Shape3& in_shape() const { return in_shape_; }
  const Shape3& out_shape() const { return out_shape_; }
  std::size_t kernel_size() const { return k_; }
  /// Kernel weights, shape (out_channels, in_channels * k * k) row-major.
  const Matrix& kernels() const { return w_; }
  Matrix& kernels() { return w_; }
  const Matrix& bias() const { return b_; }
  Matrix& bias() { return b_; }

  /// Activation map of one sample from the most recent forward pass, as a
  /// Tensor3 — used by the DDM expert's CAM-style heatmap.
  Tensor3 last_activation(std::size_t sample) const;

 private:
  Shape3 in_shape_, out_shape_;
  std::size_t k_;    // kernel side
  std::size_t pad_;  // (k - 1) / 2
  Matrix w_;         // (out_c, in_c * k * k)
  Matrix b_;         // (1, out_c)
  Matrix dw_, db_;
  Matrix cached_input_;
  Matrix cached_output_;

  double input_at(const Matrix& batch, std::size_t sample, std::size_t c, long y, long x) const;
};

/// 2x2 max pooling with stride 2. Requires even spatial dimensions.
class MaxPool2D : public Layer {
 public:
  explicit MaxPool2D(Shape3 input_shape);

  Matrix forward(const Matrix& input, bool training) override;
  Matrix backward(const Matrix& grad_output) override;

  std::size_t input_size() const override { return in_shape_.size(); }
  std::size_t output_size() const override { return out_shape_.size(); }
  std::string name() const override { return "MaxPool2D"; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<MaxPool2D>(*this); }

  const Shape3& in_shape() const { return in_shape_; }
  const Shape3& out_shape() const { return out_shape_; }

 private:
  Shape3 in_shape_, out_shape_;
  // Flat input index chosen as the max for each output element, per sample.
  std::vector<std::vector<std::size_t>> argmax_;
};

/// Global average pooling: each channel collapses to its spatial mean.
/// Used by the DDM expert (the CAM construction requires GAP + Dense).
class GlobalAvgPool : public Layer {
 public:
  explicit GlobalAvgPool(Shape3 input_shape);

  Matrix forward(const Matrix& input, bool training) override;
  Matrix backward(const Matrix& grad_output) override;

  const Shape3& in_shape() const { return in_shape_; }
  std::size_t input_size() const override { return in_shape_.size(); }
  std::size_t output_size() const override { return in_shape_.channels; }
  std::string name() const override { return "GlobalAvgPool"; }
  std::unique_ptr<Layer> clone() const override { return std::make_unique<GlobalAvgPool>(*this); }

 private:
  Shape3 in_shape_;
};

}  // namespace crowdlearn::nn
