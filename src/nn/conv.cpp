#include "nn/conv.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace crowdlearn::nn {

Conv2D::Conv2D(Shape3 input_shape, std::size_t out_channels, std::size_t kernel, Rng& rng)
    : in_shape_(input_shape),
      out_shape_{out_channels, input_shape.height, input_shape.width},
      k_(kernel),
      pad_((kernel - 1) / 2),
      w_(out_channels, input_shape.channels * kernel * kernel),
      b_(1, out_channels),
      dw_(out_channels, input_shape.channels * kernel * kernel),
      db_(1, out_channels) {
  if (kernel % 2 == 0 || kernel == 0)
    throw std::invalid_argument("Conv2D: kernel must be odd and > 0");
  if (input_shape.size() == 0 || out_channels == 0)
    throw std::invalid_argument("Conv2D: zero-sized shape");
  const double fan_in = static_cast<double>(input_shape.channels * kernel * kernel);
  const double limit = std::sqrt(6.0 / fan_in);
  for (std::size_t r = 0; r < w_.rows(); ++r)
    for (std::size_t c = 0; c < w_.cols(); ++c) w_(r, c) = rng.uniform(-limit, limit);
}

double Conv2D::input_at(const Matrix& batch, std::size_t sample, std::size_t c, long y,
                        long x) const {
  if (y < 0 || x < 0 || y >= static_cast<long>(in_shape_.height) ||
      x >= static_cast<long>(in_shape_.width))
    return 0.0;  // zero padding
  const std::size_t flat = in_shape_.flat(c, static_cast<std::size_t>(y),
                                          static_cast<std::size_t>(x));
  return batch(sample, flat);
}

Matrix Conv2D::forward(const Matrix& input, bool /*training*/) {
  if (input.cols() != in_shape_.size())
    throw std::invalid_argument("Conv2D::forward: input width mismatch");
  cached_input_ = input;
  const std::size_t batch = input.rows();
  Matrix out(batch, out_shape_.size());

  for (std::size_t s = 0; s < batch; ++s) {
    for (std::size_t oc = 0; oc < out_shape_.channels; ++oc) {
      for (std::size_t y = 0; y < out_shape_.height; ++y) {
        for (std::size_t x = 0; x < out_shape_.width; ++x) {
          double acc = b_(0, oc);
          for (std::size_t ic = 0; ic < in_shape_.channels; ++ic) {
            for (std::size_t ky = 0; ky < k_; ++ky) {
              for (std::size_t kx = 0; kx < k_; ++kx) {
                const long iy = static_cast<long>(y + ky) - static_cast<long>(pad_);
                const long ix = static_cast<long>(x + kx) - static_cast<long>(pad_);
                const double v = input_at(input, s, ic, iy, ix);
                if (v != 0.0) acc += v * w_(oc, (ic * k_ + ky) * k_ + kx);
              }
            }
          }
          out(s, out_shape_.flat(oc, y, x)) = acc;
        }
      }
    }
  }
  cached_output_ = out;
  return out;
}

Matrix Conv2D::backward(const Matrix& grad_output) {
  if (cached_input_.empty()) throw std::logic_error("Conv2D::backward before forward");
  const std::size_t batch = cached_input_.rows();
  Matrix grad_input(batch, in_shape_.size());

  for (std::size_t s = 0; s < batch; ++s) {
    for (std::size_t oc = 0; oc < out_shape_.channels; ++oc) {
      for (std::size_t y = 0; y < out_shape_.height; ++y) {
        for (std::size_t x = 0; x < out_shape_.width; ++x) {
          const double g = grad_output(s, out_shape_.flat(oc, y, x));
          if (g == 0.0) continue;
          db_(0, oc) += g;
          for (std::size_t ic = 0; ic < in_shape_.channels; ++ic) {
            for (std::size_t ky = 0; ky < k_; ++ky) {
              for (std::size_t kx = 0; kx < k_; ++kx) {
                const long iy = static_cast<long>(y + ky) - static_cast<long>(pad_);
                const long ix = static_cast<long>(x + kx) - static_cast<long>(pad_);
                if (iy < 0 || ix < 0 || iy >= static_cast<long>(in_shape_.height) ||
                    ix >= static_cast<long>(in_shape_.width))
                  continue;
                const std::size_t in_flat = in_shape_.flat(
                    ic, static_cast<std::size_t>(iy), static_cast<std::size_t>(ix));
                const std::size_t w_col = (ic * k_ + ky) * k_ + kx;
                dw_(oc, w_col) += g * cached_input_(s, in_flat);
                grad_input(s, in_flat) += g * w_(oc, w_col);
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<Param> Conv2D::params() {
  return {{&w_, &dw_, "Conv2D.W"}, {&b_, &db_, "Conv2D.b"}};
}

Tensor3 Conv2D::last_activation(std::size_t sample) const {
  if (cached_output_.empty() || sample >= cached_output_.rows())
    throw std::logic_error("Conv2D::last_activation: no cached forward pass for sample");
  return Tensor3(out_shape_, cached_output_.row(sample));
}

MaxPool2D::MaxPool2D(Shape3 input_shape)
    : in_shape_(input_shape),
      out_shape_{input_shape.channels, input_shape.height / 2, input_shape.width / 2} {
  if (input_shape.height % 2 != 0 || input_shape.width % 2 != 0)
    throw std::invalid_argument("MaxPool2D: spatial dimensions must be even");
  if (out_shape_.size() == 0) throw std::invalid_argument("MaxPool2D: degenerate shape");
}

Matrix MaxPool2D::forward(const Matrix& input, bool /*training*/) {
  if (input.cols() != in_shape_.size())
    throw std::invalid_argument("MaxPool2D::forward: input width mismatch");
  const std::size_t batch = input.rows();
  Matrix out(batch, out_shape_.size());
  argmax_.assign(batch, std::vector<std::size_t>(out_shape_.size(), 0));

  for (std::size_t s = 0; s < batch; ++s) {
    for (std::size_t c = 0; c < out_shape_.channels; ++c) {
      for (std::size_t y = 0; y < out_shape_.height; ++y) {
        for (std::size_t x = 0; x < out_shape_.width; ++x) {
          double best = -std::numeric_limits<double>::infinity();
          std::size_t best_flat = 0;
          for (std::size_t dy = 0; dy < 2; ++dy) {
            for (std::size_t dx = 0; dx < 2; ++dx) {
              const std::size_t flat = in_shape_.flat(c, 2 * y + dy, 2 * x + dx);
              const double v = input(s, flat);
              if (v > best) {
                best = v;
                best_flat = flat;
              }
            }
          }
          const std::size_t out_flat = out_shape_.flat(c, y, x);
          out(s, out_flat) = best;
          argmax_[s][out_flat] = best_flat;
        }
      }
    }
  }
  return out;
}

Matrix MaxPool2D::backward(const Matrix& grad_output) {
  if (argmax_.empty()) throw std::logic_error("MaxPool2D::backward before forward");
  const std::size_t batch = grad_output.rows();
  Matrix grad_input(batch, in_shape_.size());
  for (std::size_t s = 0; s < batch; ++s)
    for (std::size_t o = 0; o < out_shape_.size(); ++o)
      grad_input(s, argmax_[s][o]) += grad_output(s, o);
  return grad_input;
}

GlobalAvgPool::GlobalAvgPool(Shape3 input_shape) : in_shape_(input_shape) {
  if (input_shape.size() == 0) throw std::invalid_argument("GlobalAvgPool: degenerate shape");
}

Matrix GlobalAvgPool::forward(const Matrix& input, bool /*training*/) {
  if (input.cols() != in_shape_.size())
    throw std::invalid_argument("GlobalAvgPool::forward: input width mismatch");
  const std::size_t hw = in_shape_.height * in_shape_.width;
  Matrix out(input.rows(), in_shape_.channels);
  for (std::size_t s = 0; s < input.rows(); ++s) {
    for (std::size_t c = 0; c < in_shape_.channels; ++c) {
      double acc = 0.0;
      for (std::size_t i = 0; i < hw; ++i) acc += input(s, c * hw + i);
      out(s, c) = acc / static_cast<double>(hw);
    }
  }
  return out;
}

Matrix GlobalAvgPool::backward(const Matrix& grad_output) {
  const std::size_t hw = in_shape_.height * in_shape_.width;
  Matrix grad_input(grad_output.rows(), in_shape_.size());
  const double scale = 1.0 / static_cast<double>(hw);
  for (std::size_t s = 0; s < grad_output.rows(); ++s)
    for (std::size_t c = 0; c < in_shape_.channels; ++c)
      for (std::size_t i = 0; i < hw; ++i)
        grad_input(s, c * hw + i) = grad_output(s, c) * scale;
  return grad_input;
}

}  // namespace crowdlearn::nn
