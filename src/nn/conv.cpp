#include "nn/conv.hpp"

#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "nn/workspace.hpp"
#include "util/thread_pool.hpp"

namespace crowdlearn::nn {

namespace {

std::atomic<ConvKernelMode> g_kernel_mode{ConvKernelMode::kIm2col};

/// Static-chunk [0, n) over the pool (serial when null/single-threaded).
/// Every chunked loop below writes disjoint preallocated slots and keeps
/// each accumulator's term order independent of the partition, so the bits
/// match the serial path at any thread count (PR 1's pool contract).
template <typename ChunkFn>
void run_chunks(util::ThreadPool* pool, std::size_t n, std::size_t min_grain, ChunkFn&& fn) {
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_chunks_grained(n, min_grain, fn);
  } else if (n > 0) {
    fn(std::size_t{0}, n);
  }
}

}  // namespace

void Conv2D::set_kernel_mode(ConvKernelMode m) {
  g_kernel_mode.store(m, std::memory_order_relaxed);
}

ConvKernelMode Conv2D::kernel_mode() {
  return g_kernel_mode.load(std::memory_order_relaxed);
}

Conv2D::Conv2D(Shape3 input_shape, std::size_t out_channels, std::size_t kernel, Rng& rng)
    : in_shape_(input_shape),
      out_shape_{out_channels, input_shape.height, input_shape.width},
      k_(kernel),
      pad_((kernel - 1) / 2),
      w_(out_channels, input_shape.channels * kernel * kernel),
      b_(1, out_channels),
      dw_(out_channels, input_shape.channels * kernel * kernel),
      db_(1, out_channels) {
  if (kernel % 2 == 0 || kernel == 0)
    throw std::invalid_argument("Conv2D: kernel must be odd and > 0");
  if (input_shape.size() == 0 || out_channels == 0)
    throw std::invalid_argument("Conv2D: zero-sized shape");
  const double fan_in = static_cast<double>(input_shape.channels * kernel * kernel);
  const double limit = std::sqrt(6.0 / fan_in);
  for (std::size_t r = 0; r < w_.rows(); ++r)
    for (std::size_t c = 0; c < w_.cols(); ++c) w_(r, c) = rng.uniform(-limit, limit);
}

Conv2D::Conv2D(const Conv2D& o)
    : in_shape_(o.in_shape_),
      out_shape_(o.out_shape_),
      k_(o.k_),
      pad_(o.pad_),
      w_(o.w_),
      b_(o.b_),
      dw_(o.dw_),
      db_(o.db_),
      cached_input_(o.cached_input_),
      cached_output_(o.cached_output_),
      last_mode_(o.last_mode_) {}

Conv2D::~Conv2D() = default;

void Conv2D::bind_workspace(Workspace* ws, std::size_t layer_id) {
  ws_ = ws;
  layer_id_ = layer_id;
  own_ws_.reset();
  have_fwd_state_ = false;  // any retained im2col scratch lived elsewhere
}

Workspace& Conv2D::scratch() {
  if (ws_ != nullptr) return *ws_;
  if (!own_ws_) own_ws_ = std::make_unique<Workspace>();
  return *own_ws_;
}

Matrix Conv2D::forward(const Matrix& input, bool training) {
  Matrix out;
  forward_into(input, out, training);
  return out;
}

void Conv2D::forward_into(const Matrix& input, Matrix& out, bool training) {
  if (input.cols() != in_shape_.size())
    throw std::invalid_argument("Conv2D::forward: input width mismatch");
#ifndef NDEBUG
  // The zero-skips in both kernel flavors drop 0*inf = NaN terms, which is
  // only sound when inputs and parameters are finite (see docs/PERFORMANCE.md
  // and tests/test_nn_kernels.cpp, which pin these semantics).
  input.debug_check_finite("Conv2D input");
  w_.debug_check_finite("Conv2D weights");
  b_.debug_check_finite("Conv2D bias");
#endif
  const ConvKernelMode mode = kernel_mode();
  last_mode_ = mode;
  if (mode == ConvKernelMode::kNaiveReference) {
    // The training flag gates the backward state: inference forwards skip
    // the full input copy the original implementation always paid.
    cached_input_ = training ? input : Matrix();
    have_fwd_state_ = false;
    out.reshape(input.rows(), out_shape_.size());
    kernels::naive_conv2d_forward(geometry(), w_, b_, input, out);
  } else {
    forward_im2col(input, out, training);
  }
  cached_output_ = out;  // Grad-CAM reads this even at inference
}

void Conv2D::forward_im2col(const Matrix& input, Matrix& out, bool training) {
  Workspace& ws = scratch();
  util::ThreadPool* pool = ws.pool();
  const std::size_t batch = input.rows();
  const std::size_t hw = out_shape_.height * out_shape_.width;
  const std::size_t ckk = w_.cols();
  const std::size_t oc_n = out_shape_.channels;

  Matrix& cols = ws.buffer(layer_id_, 0, batch * hw, ckk);
  Matrix& wt = ws.buffer(layer_id_, 1, ckk, oc_n);
  Matrix& om = ws.buffer(layer_id_, 2, batch * hw, oc_n);

  run_chunks(pool, batch, /*min_grain=*/1, [&](std::size_t sb, std::size_t se) {
    kernels::im2col_rows(input, in_shape_, k_, pad_, cols, sb, se);
  });
  kernels::transpose_weights(w_, wt);
  // Per output element this accumulates bias + ascending-(ic,ky,kx) products
  // with the `a == 0.0` skip on the im2col value — exactly the term sequence
  // (and skip set: padding and in-bounds zeros alike) of the naive kernel,
  // so the doubles are byte-identical. Rows are independent, hence chunkable.
  run_chunks(pool, batch * hw, /*min_grain=*/32, [&](std::size_t rb, std::size_t re) {
    kernels::fill_bias_rows(b_, om, rb, re);
    cols.matmul_rows_accumulate(wt, om, rb, re);
  });
  out.reshape(batch, out_shape_.size());
  run_chunks(pool, batch, /*min_grain=*/1, [&](std::size_t sb, std::size_t se) {
    kernels::scatter_channel_major(om, out, oc_n, hw, sb, se);
  });

  // Training retains the im2col buffer (slot 0) — it is exactly the cached
  // input the weight gradient needs, so no separate input copy is kept.
  have_fwd_state_ = training;
  fwd_batch_ = batch;
  cached_input_ = Matrix();
}

Matrix Conv2D::backward(const Matrix& grad_output) {
  if (last_mode_ == ConvKernelMode::kNaiveReference) {
    if (cached_input_.empty()) throw std::logic_error("Conv2D::backward before forward");
    Matrix grad_input(cached_input_.rows(), in_shape_.size());
    kernels::naive_conv2d_backward(geometry(), w_, cached_input_, grad_output, grad_input,
                                   dw_, db_);
    return grad_input;
  }
  return backward_im2col(grad_output);
}

Matrix Conv2D::backward_im2col(const Matrix& grad_output) {
  if (!have_fwd_state_)
    throw std::logic_error("Conv2D::backward before forward (training pass required)");
  if (grad_output.rows() != fwd_batch_ || grad_output.cols() != out_shape_.size())
    throw std::invalid_argument("Conv2D::backward: grad shape mismatch");
  Workspace& ws = scratch();
  util::ThreadPool* pool = ws.pool();
  const std::size_t batch = fwd_batch_;
  const std::size_t hw = out_shape_.height * out_shape_.width;
  const std::size_t ic_n = in_shape_.channels;
  const std::size_t oc_n = out_shape_.channels;
  const std::size_t k2 = k_ * k_;
  const kernels::ConvGeometry g = geometry();

  Matrix& cols = ws.buffer(layer_id_, 0, batch * hw, w_.cols());  // retained from forward

  // Weight/bias gradient: output channels own disjoint dw rows / db slots,
  // and within a channel the kernel visits samples-then-positions ascending
  // (the naive order), so chunking over channels is bit-stable.
  run_chunks(pool, oc_n, /*min_grain=*/1, [&](std::size_t ob, std::size_t oe) {
    kernels::conv2d_weight_grad(g, cols, grad_output, dw_, db_, ob, oe);
  });

  Matrix grad_input(batch, in_shape_.size());

  // Input gradient: both routes below produce byte-identical doubles — per
  // target element the terms arrive (oc, source y, source x) ascending with
  // the same zero-grad skip set — so the choice is pure performance. Training
  // gradients behind a ReLU/MaxPool are mostly zeros, where the scatter
  // kernel's `grad == 0.0` skip beats materializing the gradient im2col
  // panel; dense gradients amortize better through the GEMM. The density is
  // a pure function of the data, so the route (and the bits) never depend on
  // thread count.
  std::size_t nonzero = 0;
  for (double v : grad_output.data()) nonzero += (v != 0.0) ? 1 : 0;
  const bool sparse = nonzero * 4 < grad_output.data().size();  // < 25 % nonzero
  if (sparse) {
    run_chunks(pool, batch, /*min_grain=*/1, [&](std::size_t sb, std::size_t se) {
      kernels::conv2d_grad_input_scatter(g, w_, grad_output, grad_input, sb, se);
    });
    return grad_input;
  }

  // Dense route — a transposed convolution: im2col the *gradient* over the
  // output geometry, multiply by the flipped-kernel weight layout. The GEMM
  // reduction ascends (oc, ky, kx) = (oc, source y, source x), and the
  // `a == 0.0` skip covers both the naive `g == 0.0` skip and its bounds
  // `continue`.
  Matrix& gcols = ws.buffer(layer_id_, 3, batch * hw, oc_n * k2);
  Matrix& w2 = ws.buffer(layer_id_, 4, oc_n * k2, ic_n);
  Matrix& gim = ws.buffer(layer_id_, 5, batch * hw, ic_n);
  run_chunks(pool, batch, /*min_grain=*/1, [&](std::size_t sb, std::size_t se) {
    kernels::im2col_rows(grad_output, out_shape_, k_, pad_, gcols, sb, se);
  });
  kernels::flipped_weights(g, w_, w2);
  run_chunks(pool, batch * hw, /*min_grain=*/32, [&](std::size_t rb, std::size_t re) {
    gcols.matmul_rows_into(w2, gim, rb, re);
  });
  run_chunks(pool, batch, /*min_grain=*/1, [&](std::size_t sb, std::size_t se) {
    kernels::scatter_channel_major(gim, grad_input, ic_n, hw, sb, se);
  });
  return grad_input;
}

std::vector<Param> Conv2D::params() {
  return {{&w_, &dw_, "Conv2D.W"}, {&b_, &db_, "Conv2D.b"}};
}

Tensor3 Conv2D::last_activation(std::size_t sample) const {
  if (cached_output_.empty() || sample >= cached_output_.rows())
    throw std::logic_error("Conv2D::last_activation: no cached forward pass for sample");
  return Tensor3(out_shape_, cached_output_.row(sample));
}

MaxPool2D::MaxPool2D(Shape3 input_shape)
    : in_shape_(input_shape),
      out_shape_{input_shape.channels, input_shape.height / 2, input_shape.width / 2} {
  if (input_shape.height % 2 != 0 || input_shape.width % 2 != 0)
    throw std::invalid_argument("MaxPool2D: spatial dimensions must be even");
  if (out_shape_.size() == 0) throw std::invalid_argument("MaxPool2D: degenerate shape");
}

Matrix MaxPool2D::forward(const Matrix& input, bool training) {
  Matrix out;
  forward_into(input, out, training);
  return out;
}

void MaxPool2D::forward_into(const Matrix& input, Matrix& out, bool /*training*/) {
  if (input.cols() != in_shape_.size())
    throw std::invalid_argument("MaxPool2D::forward: input width mismatch");
  const std::size_t batch = input.rows();
  const std::size_t out_size = out_shape_.size();
  out.reshape(batch, out_size);
  argmax_.resize(batch * out_size);  // capacity reused; every entry rewritten
  argmax_batch_ = batch;

  for (std::size_t s = 0; s < batch; ++s) {
    for (std::size_t c = 0; c < out_shape_.channels; ++c) {
      for (std::size_t y = 0; y < out_shape_.height; ++y) {
        for (std::size_t x = 0; x < out_shape_.width; ++x) {
          double best = -std::numeric_limits<double>::infinity();
          std::size_t best_flat = 0;
          for (std::size_t dy = 0; dy < 2; ++dy) {
            for (std::size_t dx = 0; dx < 2; ++dx) {
              const std::size_t flat = in_shape_.flat(c, 2 * y + dy, 2 * x + dx);
              const double v = input(s, flat);
              if (v > best) {
                best = v;
                best_flat = flat;
              }
            }
          }
          const std::size_t out_flat = out_shape_.flat(c, y, x);
          out(s, out_flat) = best;
          argmax_[s * out_size + out_flat] = best_flat;
        }
      }
    }
  }
}

Matrix MaxPool2D::backward(const Matrix& grad_output) {
  if (argmax_batch_ == 0) throw std::logic_error("MaxPool2D::backward before forward");
  const std::size_t batch = grad_output.rows();
  const std::size_t out_size = out_shape_.size();
  Matrix grad_input(batch, in_shape_.size());
  for (std::size_t s = 0; s < batch; ++s)
    for (std::size_t o = 0; o < out_size; ++o)
      grad_input(s, argmax_[s * out_size + o]) += grad_output(s, o);
  return grad_input;
}

GlobalAvgPool::GlobalAvgPool(Shape3 input_shape) : in_shape_(input_shape) {
  if (input_shape.size() == 0) throw std::invalid_argument("GlobalAvgPool: degenerate shape");
}

Matrix GlobalAvgPool::forward(const Matrix& input, bool training) {
  Matrix out;
  forward_into(input, out, training);
  return out;
}

void GlobalAvgPool::forward_into(const Matrix& input, Matrix& out, bool /*training*/) {
  if (input.cols() != in_shape_.size())
    throw std::invalid_argument("GlobalAvgPool::forward: input width mismatch");
  const std::size_t hw = in_shape_.height * in_shape_.width;
  out.reshape(input.rows(), in_shape_.channels);
  for (std::size_t s = 0; s < input.rows(); ++s) {
    for (std::size_t c = 0; c < in_shape_.channels; ++c) {
      double acc = 0.0;
      for (std::size_t i = 0; i < hw; ++i) acc += input(s, c * hw + i);
      out(s, c) = acc / static_cast<double>(hw);
    }
  }
}

Matrix GlobalAvgPool::backward(const Matrix& grad_output) {
  const std::size_t hw = in_shape_.height * in_shape_.width;
  Matrix grad_input(grad_output.rows(), in_shape_.size());
  const double scale = 1.0 / static_cast<double>(hw);
  for (std::size_t s = 0; s < grad_output.rows(); ++s)
    for (std::size_t c = 0; c < in_shape_.channels; ++c)
      for (std::size_t i = 0; i < hw; ++i)
        grad_input(s, c * hw + i) = grad_output(s, c) * scale;
  return grad_input;
}

}  // namespace crowdlearn::nn
