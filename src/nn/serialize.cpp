#include "nn/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "nn/conv.hpp"

namespace crowdlearn::nn {

namespace {

constexpr const char* kMagic = "crowdlearn-model";

void write_matrix(std::ostream& os, const Matrix& m) {
  os << m.rows() << " " << m.cols() << "\n";
  for (std::size_t i = 0; i < m.data().size(); ++i) {
    os << m.data()[i];
    os << ((i + 1) % 8 == 0 ? "\n" : " ");
  }
  os << "\n";
}

Matrix read_matrix(std::istream& is) {
  std::size_t rows = 0, cols = 0;
  if (!(is >> rows >> cols)) throw std::runtime_error("model load: bad matrix header");
  if (rows == 0 || cols == 0 || rows * cols > (1u << 26))
    throw std::runtime_error("model load: implausible matrix dimensions");
  Matrix m(rows, cols);
  for (double& v : m.data())
    if (!(is >> v)) throw std::runtime_error("model load: truncated matrix data");
  return m;
}

void write_shape(std::ostream& os, const Shape3& s) {
  os << s.channels << " " << s.height << " " << s.width << "\n";
}

Shape3 read_shape(std::istream& is) {
  Shape3 s;
  if (!(is >> s.channels >> s.height >> s.width))
    throw std::runtime_error("model load: bad shape");
  if (s.size() == 0) throw std::runtime_error("model load: degenerate shape");
  return s;
}

void save_layer(std::ostream& os, const Layer& layer) {
  const std::string tag = layer.name();
  os << tag << "\n";
  if (const auto* dense = dynamic_cast<const Dense*>(&layer)) {
    os << dense->input_size() << " " << dense->output_size() << "\n";
    write_matrix(os, dense->weights());
    write_matrix(os, dense->bias());
  } else if (const auto* conv = dynamic_cast<const Conv2D*>(&layer)) {
    write_shape(os, conv->in_shape());
    os << conv->out_shape().channels << " " << conv->kernel_size() << "\n";
    write_matrix(os, conv->kernels());
    write_matrix(os, conv->bias());
  } else if (const auto* pool = dynamic_cast<const MaxPool2D*>(&layer)) {
    write_shape(os, pool->in_shape());
  } else if (const auto* gap = dynamic_cast<const GlobalAvgPool*>(&layer)) {
    write_shape(os, gap->in_shape());
  } else if (dynamic_cast<const ReLU*>(&layer) != nullptr ||
             dynamic_cast<const Tanh*>(&layer) != nullptr) {
    os << layer.input_size() << "\n";
  } else if (const auto* dropout = dynamic_cast<const Dropout*>(&layer)) {
    os << dropout->input_size() << " " << dropout->rate() << "\n";
  } else {
    throw std::runtime_error("model save: unknown layer type " + tag);
  }
}

std::unique_ptr<Layer> load_layer(std::istream& is) {
  std::string tag;
  if (!(is >> tag)) throw std::runtime_error("model load: missing layer tag");
  // Weight-carrying layers are constructed with a throwaway RNG and then
  // overwritten with the stored parameters.
  Rng dummy(0);
  if (tag == "Dense") {
    std::size_t in = 0, out = 0;
    if (!(is >> in >> out)) throw std::runtime_error("model load: bad Dense header");
    auto dense = std::make_unique<Dense>(in, out, dummy);
    Matrix w = read_matrix(is);
    Matrix b = read_matrix(is);
    if (w.rows() != in || w.cols() != out || b.rows() != 1 || b.cols() != out)
      throw std::runtime_error("model load: Dense parameter shape mismatch");
    dense->weights() = std::move(w);
    dense->bias() = std::move(b);
    return dense;
  }
  if (tag == "Conv2D") {
    const Shape3 in = read_shape(is);
    std::size_t out_c = 0, kernel = 0;
    if (!(is >> out_c >> kernel)) throw std::runtime_error("model load: bad Conv2D header");
    auto conv = std::make_unique<Conv2D>(in, out_c, kernel, dummy);
    Matrix w = read_matrix(is);
    Matrix b = read_matrix(is);
    if (w.rows() != out_c || w.cols() != in.channels * kernel * kernel || b.cols() != out_c)
      throw std::runtime_error("model load: Conv2D parameter shape mismatch");
    conv->kernels() = std::move(w);
    conv->bias() = std::move(b);
    return conv;
  }
  if (tag == "MaxPool2D") return std::make_unique<MaxPool2D>(read_shape(is));
  if (tag == "GlobalAvgPool") return std::make_unique<GlobalAvgPool>(read_shape(is));
  if (tag == "ReLU" || tag == "Tanh") {
    std::size_t size = 0;
    if (!(is >> size) || size == 0)
      throw std::runtime_error("model load: bad activation size");
    if (tag == "ReLU") return std::make_unique<ReLU>(size);
    return std::make_unique<Tanh>(size);
  }
  if (tag == "Dropout") {
    std::size_t size = 0;
    double rate = 0.0;
    if (!(is >> size >> rate)) throw std::runtime_error("model load: bad Dropout header");
    return std::make_unique<Dropout>(size, rate, dummy);
  }
  throw std::runtime_error("model load: unknown layer tag '" + tag + "'");
}

}  // namespace

void save_model(const Sequential& model, std::ostream& os) {
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << kMagic << " " << kModelFormatVersion << "\n";
  os << model.num_layers() << "\n";
  for (std::size_t i = 0; i < model.num_layers(); ++i) save_layer(os, model.layer(i));
  if (!os) throw std::runtime_error("model save: stream failure");
}

Sequential load_model(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != kMagic)
    throw std::runtime_error("model load: not a crowdlearn model stream");
  if (version != kModelFormatVersion)
    throw std::runtime_error("model load: unsupported format version " +
                             std::to_string(version));
  std::size_t layers = 0;
  if (!(is >> layers) || layers == 0 || layers > 1024)
    throw std::runtime_error("model load: implausible layer count");
  Sequential model;
  for (std::size_t i = 0; i < layers; ++i) model.add(load_layer(is));
  return model;
}

void save_model_file(const Sequential& model, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("model save: cannot open " + path);
  save_model(model, os);
}

Sequential load_model_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("model load: cannot open " + path);
  return load_model(is);
}

}  // namespace crowdlearn::nn
