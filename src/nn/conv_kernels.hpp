#pragma once
// Convolution compute kernels, in two interchangeable flavors:
//
//  * naive_conv2d_forward/backward — the original 7-deep reference loops,
//    retained verbatim. They define the bit patterns everything else must
//    reproduce, and they are what the perf-regression benchmarks compare
//    against (BM_Conv2DForwardNaive etc.).
//  * the im2col building blocks Conv2D assembles into GEMM calls. The
//    im2col column order matches the naive `(ic*k + ky)*k + kx` reduction
//    order exactly, and Matrix::matmul's `a == 0.0` left-operand skip is
//    the same skip set as the naive kernels' `v != 0.0` / `g == 0.0` /
//    bounds checks — so both flavors accumulate identical term sequences
//    and produce byte-identical doubles (tests/test_nn_kernels.cpp).
//
// All kernels assume stride 1, square odd kernels, and "same" zero padding
// pad = (k-1)/2, i.e. identical input and output spatial dimensions. See
// docs/PERFORMANCE.md for the full equivalence argument.

#include <cstddef>

#include "nn/matrix.hpp"
#include "nn/tensor3.hpp"

namespace crowdlearn::nn::kernels {

/// The geometry of one Conv2D layer: shapes share height/width ("same"
/// padding), out.channels is the filter count.
struct ConvGeometry {
  Shape3 in, out;
  std::size_t k = 0;    // kernel side (odd)
  std::size_t pad = 0;  // (k - 1) / 2
};

// --- naive reference ------------------------------------------------------

/// Reference forward: out(s, (oc,y,x)) = b(0,oc) + sum over (ic,ky,kx) of
/// in-bounds nonzero input * weight, accumulated in ascending (ic,ky,kx)
/// order. `out` must be pre-shaped (batch x out.size()); every entry is
/// written.
void naive_conv2d_forward(const ConvGeometry& g, const Matrix& w, const Matrix& b,
                          const Matrix& input, Matrix& out);

/// Reference backward. `grad_input` must be pre-shaped (batch x in.size())
/// and is zero-filled here; `dw`/`db` are accumulated into (+=), matching
/// the layer's cross-batch gradient accumulation semantics.
void naive_conv2d_backward(const ConvGeometry& g, const Matrix& w, const Matrix& cached_input,
                           const Matrix& grad_output, Matrix& grad_input, Matrix& dw,
                           Matrix& db);

// --- im2col building blocks -----------------------------------------------

/// Lower samples [sample_begin, sample_end) of `src` into `cols`: row
/// s*H*W + (y*W + x) holds the k x k window around (y, x) for every channel,
/// column order (c*k + ky)*k + kx, zero-padded out of bounds. `shape`
/// describes `src` rows (C, H, W); `cols` must be pre-shaped to
/// (batch*H*W) x (C*k*k). Sample ranges write disjoint rows, so this is
/// safe to chunk across threads.
void im2col_rows(const Matrix& src, const Shape3& shape, std::size_t k, std::size_t pad,
                 Matrix& cols, std::size_t sample_begin, std::size_t sample_end);

/// wt = w^T written into a pre-shaped (in_c*k*k) x (out_c) buffer.
void transpose_weights(const Matrix& w, Matrix& wt);

/// Transposed-convolution weight layout for the input gradient:
/// w2((oc*k + ky)*k + kx, ic) = w(oc, (ic*k + (k-1-ky))*k + (k-1-kx)).
/// With this layout, gim = im2col(grad_output) x w2 reduces over ascending
/// (oc, ky, kx) — which is exactly the naive backward's per-target term
/// order (oc ascending, then source y/x ascending). `w2` must be pre-shaped
/// to (out_c*k*k) x (in_c).
void flipped_weights(const ConvGeometry& g, const Matrix& w, Matrix& w2);

/// Seed rows [row_begin, row_end) of `om` (a (batch*H*W) x out_c panel)
/// with the bias: om(r, oc) = b(0, oc). The GEMM then accumulates on top,
/// reproducing the naive `acc = b; acc += ...` order.
void fill_bias_rows(const Matrix& b, Matrix& om, std::size_t row_begin, std::size_t row_end);

/// Scatter a (batch*H*W) x channels panel back to channel-major rows:
/// dst(s, c*HW + p) = panel(s*HW + p, c) for samples in
/// [sample_begin, sample_end). Pure copy — no arithmetic.
void scatter_channel_major(const Matrix& panel, Matrix& dst, std::size_t channels,
                           std::size_t hw, std::size_t sample_begin, std::size_t sample_end);

/// Weight/bias gradient for output channels [oc_begin, oc_end): for each
/// nonzero grad g(s, oc, y, x) — samples then positions ascending, exactly
/// the naive visit order per channel — add g to db(0, oc) and
/// g * cols-window to the valid (in-bounds) columns of dw row oc. Channel
/// ranges write disjoint dw rows / db entries, so this chunks across
/// threads. `cols` is the retained im2col buffer from forward(training).
void conv2d_weight_grad(const ConvGeometry& g, const Matrix& cols, const Matrix& grad_output,
                        Matrix& dw, Matrix& db, std::size_t oc_begin, std::size_t oc_end);

/// Input gradient via the naive scatter loop, restricted to grad_input (no
/// dw/db): for each nonzero grad, scatter g * w over the in-bounds window.
/// Per target the terms arrive (oc, source y, source x) ascending — the same
/// sequence the gather GEMM over the flipped-weight layout reduces in — so
/// the two paths are byte-identical and the caller can pick by gradient
/// density (the `grad == 0.0` skip makes scatter win on sparse post-ReLU
/// training gradients; the GEMM wins dense). Rows of grad_input for samples
/// [sample_begin, sample_end) must be pre-zeroed; sample ranges write
/// disjoint rows, so this chunks across threads.
void conv2d_grad_input_scatter(const ConvGeometry& g, const Matrix& w,
                               const Matrix& grad_output, Matrix& grad_input,
                               std::size_t sample_begin, std::size_t sample_end);

}  // namespace crowdlearn::nn::kernels
