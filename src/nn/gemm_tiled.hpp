#pragma once
// Shared body of the cache-blocked GEMM kernel (GemmKernel::kTiled). This
// header is compiled into two translation units — gemm_tiled_generic.cpp
// (portable baseline ISA) and gemm_tiled_avx512.cpp (wider vectors, built
// only when the compiler supports -mavx512f) — and Matrix picks one at
// runtime. The ISA split lives at the TU boundary, not in a target
// attribute, because GCC's target("avx512f") quietly licenses FMA
// contraction, and a fused multiply-add rounds once where the contract
// requires twice: the bits would drift from the reference kernel. The
// AVX-512 TU is therefore compiled with -ffp-contract=off.
//
// The blocking is order-preserving. Per output element out(i,j) the
// contract (see Matrix::matmul_rows_into) is: products accumulate in
// ascending-k order, with the `a == 0.0` left-operand skip. Every loop
// transform here respects that:
//   * (jj, kk) panels: an output element lives in exactly one jj panel; kk
//     panels are visited ascending with k ascending inside, so the add
//     sequence per element is untouched.
//   * row quads: rows are independent output elements — interleaving their
//     k loops shares each B load across kRowBlock rows (the L2-bandwidth
//     win) without reordering any single element's terms.
//   * register strips: holding a j-strip of out in locals between panel
//     boundary loads/stores performs the same adds on the same values;
//     x86-64 doubles carry no excess precision, so register residency
//     cannot change a bit.
// tests/test_gemm_tiled.cpp holds the bitwise differential battery.

#include <algorithm>
#include <cstddef>

namespace crowdlearn::nn::detail {
// Anonymous namespace on purpose: the body must have INTERNAL linkage.
// With ordinary inline linkage both TUs would emit the same COMDAT symbol
// and the linker would keep exactly one copy — whichever object is seen
// first — silently routing the AVX-512 entry point through baseline code
// (or vice versa). Internal linkage gives each TU its own instantiation,
// which is the whole point of compiling this header twice.
namespace {

// Tile extents. The hot panel is kTileK x kTileJ of B (128 KiB, L2
// resident across the whole row sweep); each row quad streams its A
// segments and out strips through without evicting it. kStripJ doubles of
// out per row live in registers across a k panel — 4 rows x 32 columns is
// 16 full-width accumulator vectors under AVX-512, within the 32-register
// file, and spills only mildly under SSE2 where perf is not gated.
inline constexpr std::size_t kTileK = 64;
inline constexpr std::size_t kTileJ = 256;
inline constexpr std::size_t kStripJ = 32;
inline constexpr std::size_t kRowBlock = 4;

// One (jj, kk) panel for `Rows` consecutive output rows starting at i0.
template <std::size_t Rows>
inline void gemm_panel_rows(const double* a, const double* b, double* out, std::size_t i0,
                            std::size_t k_dim, std::size_t p, std::size_t jj, std::size_t je,
                            std::size_t kk, std::size_t ke) {
  const double* arow[Rows];
  double* orow[Rows];
  for (std::size_t r = 0; r < Rows; ++r) {
    arow[r] = &a[(i0 + r) * k_dim];
    orow[r] = &out[(i0 + r) * p];
  }
  std::size_t js = jj;
  for (; js + kStripJ <= je; js += kStripJ) {
    double acc[Rows][kStripJ];
    for (std::size_t r = 0; r < Rows; ++r)
      for (std::size_t t = 0; t < kStripJ; ++t) acc[r][t] = orow[r][js + t];
    for (std::size_t k = kk; k < ke; ++k) {
      const double* bseg = &b[k * p + js];
      for (std::size_t r = 0; r < Rows; ++r) {
        const double av = arow[r][k];
        if (av == 0.0) continue;
        for (std::size_t t = 0; t < kStripJ; ++t) acc[r][t] += av * bseg[t];
      }
    }
    for (std::size_t r = 0; r < Rows; ++r)
      for (std::size_t t = 0; t < kStripJ; ++t) orow[r][js + t] = acc[r][t];
  }
  // Column remainder (p not a multiple of kStripJ): one partial strip of
  // runtime width w < kStripJ. Same ascending-k order and zero skip; the
  // inner loops stay contiguous over B so narrow outputs (small Dense
  // layers, few conv output channels) keep the vectorizable shape instead
  // of degrading to strided scalar column walks.
  if (js < je) {
    const std::size_t w = je - js;
    double acc[Rows][kStripJ];
    for (std::size_t r = 0; r < Rows; ++r)
      for (std::size_t t = 0; t < w; ++t) acc[r][t] = orow[r][js + t];
    for (std::size_t k = kk; k < ke; ++k) {
      const double* bseg = &b[k * p + js];
      for (std::size_t r = 0; r < Rows; ++r) {
        const double av = arow[r][k];
        if (av == 0.0) continue;
        for (std::size_t t = 0; t < w; ++t) acc[r][t] += av * bseg[t];
      }
    }
    for (std::size_t r = 0; r < Rows; ++r)
      for (std::size_t t = 0; t < w; ++t) orow[r][js + t] = acc[r][t];
  }
}

// Accumulate out[rb..re) += a[rb..re) * b for an (m x k_dim) * (k_dim x p)
// product, cache-blocked. Caller has already validated shapes, rejected
// degenerate extents, and peeled the p == 1 fast path.
inline void gemm_tiled_rows(const double* a, const double* b, double* out, std::size_t row_begin,
                            std::size_t row_end, std::size_t k_dim, std::size_t p) {
  for (std::size_t jj = 0; jj < p; jj += kTileJ) {
    const std::size_t je = std::min(jj + kTileJ, p);
    for (std::size_t kk = 0; kk < k_dim; kk += kTileK) {
      const std::size_t ke = std::min(kk + kTileK, k_dim);
      std::size_t i = row_begin;
      for (; i + kRowBlock <= row_end; i += kRowBlock)
        gemm_panel_rows<kRowBlock>(a, b, out, i, k_dim, p, jj, je, kk, ke);
      for (; i < row_end; ++i) gemm_panel_rows<1>(a, b, out, i, k_dim, p, jj, je, kk, ke);
    }
  }
}

}  // namespace
}  // namespace crowdlearn::nn::detail
