#pragma once
// Lightweight (channels, height, width) view helpers. Convolutional layers
// in this library operate on batches stored as flat rows (Matrix with one
// row per sample); Tensor3 describes the geometry of such a row and offers
// indexing into it.

#include <cstddef>
#include <vector>

namespace crowdlearn::nn {

/// Geometry descriptor for a flattened (C, H, W) sample.
struct Shape3 {
  std::size_t channels = 0;
  std::size_t height = 0;
  std::size_t width = 0;

  std::size_t size() const { return channels * height * width; }

  /// Flat index of (c, y, x) in channel-major layout.
  std::size_t flat(std::size_t c, std::size_t y, std::size_t x) const;

  bool operator==(const Shape3&) const = default;
};

/// Owning 3-D tensor, channel-major. Used by the synthetic image renderer
/// and by Grad-CAM-style heatmap computation in the DDM expert.
class Tensor3 {
 public:
  Tensor3() = default;
  explicit Tensor3(Shape3 shape, double fill = 0.0);
  Tensor3(Shape3 shape, std::vector<double> data);

  const Shape3& shape() const { return shape_; }
  std::size_t size() const { return data_.size(); }

  double& at(std::size_t c, std::size_t y, std::size_t x);
  double at(std::size_t c, std::size_t y, std::size_t x) const;

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Mean over the spatial dimensions of one channel (global average pool).
  double channel_mean(std::size_t c) const;

 private:
  Shape3 shape_;
  std::vector<double> data_;
};

}  // namespace crowdlearn::nn
