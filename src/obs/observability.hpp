#pragma once
// Observability context: one MetricsRegistry + one Tracer, handed to
// instrumented components as a nullable pointer.
//
// Two kill switches compose (docs/OBSERVABILITY.md):
//   - Compile-time: build with -DCROWDLEARN_OBS=OFF (CMake option) and
//     CROWDLEARN_OBS_ENABLED is 0; obs::active() becomes `if constexpr
//     (false)` so every instrumentation site folds to nothing.
//   - Runtime: leave CrowdLearnConfig::observability.enabled false (the
//     default) and components hold a null Observability*, so each site
//     costs one predictable-null branch.
//
// Instrumented components follow one pattern: a set_observability(obs*)
// method resolves metric handles ONCE (registry lookups take a shard lock)
// and caches raw Counter*/Gauge*/Histogram* members; hot paths then do
//   if (obs::active(obs_)) { handle_->inc(); }
// Recording never draws randomness and never feeds back into control flow,
// preserving the byte-identical-per-seed determinism contract.

#include <cstddef>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#ifndef CROWDLEARN_OBS_ENABLED
#define CROWDLEARN_OBS_ENABLED 1
#endif

namespace crowdlearn::obs {

/// True when instrumentation was compiled in (CMake option CROWDLEARN_OBS).
inline constexpr bool kCompiledIn = CROWDLEARN_OBS_ENABLED != 0;

struct ObservabilityConfig {
  bool enabled = false;        ///< master runtime switch
  bool tracing = true;         ///< also collect spans (only when enabled)
  std::size_t metric_shards = 8;
};

/// Owns the registry and the tracer. Components receive `Observability*`
/// (null when disabled) and must not outlive it; CrowdLearnSystem owns one
/// via shared_ptr declared before the thread pool so workers never observe
/// a dangling registry.
class Observability {
 public:
  explicit Observability(const ObservabilityConfig& cfg = {})
      : cfg_(cfg), metrics_(cfg.metric_shards) {}

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  const ObservabilityConfig& config() const { return cfg_; }

 private:
  ObservabilityConfig cfg_;
  MetricsRegistry metrics_;
  Tracer tracer_;
};

/// The one guard every instrumentation site uses. Folds to `false` at
/// compile time when instrumentation is compiled out.
inline bool active(const Observability* o) {
  if constexpr (!kCompiledIn) {
    (void)o;
    return false;
  } else {
    return o != nullptr;
  }
}

/// Tracer to hand to SpanScope: null unless observability is active AND
/// tracing is configured on.
inline Tracer* tracer_of(Observability* o) {
  if (!active(o)) return nullptr;
  return o->config().tracing ? &o->tracer() : nullptr;
}

}  // namespace crowdlearn::obs
