#pragma once
// Lock-sharded metrics registry: counters, gauges and fixed-bucket
// histograms, exported as Prometheus-style text and as a JSON snapshot.
//
// Contract (docs/OBSERVABILITY.md):
//   - Metric objects returned by the registry have stable addresses for the
//     registry's lifetime, so hot paths resolve a handle once (at wiring
//     time) and then record through a pointer — no name lookup per event.
//   - Recording is thread-safe. Counters and gauges are single atomics;
//     histograms take a per-histogram mutex so a snapshot can never tear
//     (a snapshot's bucket counts always sum to its total count, and its
//     sum/min/max were produced by exactly those observations).
//   - Recording never draws randomness and never feeds back into control
//     flow: enabling metrics cannot perturb the library's determinism
//     contract (tests/test_determinism.cpp locks this in end-to-end).
//   - Histogram bucket `upper_bounds` are *inclusive* upper edges
//     (Prometheus `le` semantics): a value v lands in the first bucket with
//     v <= upper_bounds[i]; values above the last bound land in the implicit
//     +Inf overflow bucket. tests/test_obs_metrics.cpp pins the boundaries.
//
// Labels are encoded into the series name Prometheus-style, e.g.
//   crowdlearn_expert_weight{expert="0"}
// (see MetricsRegistry::labeled). The registry treats the full string as the
// series key; the text exporter splits it back apart so histogram suffixes
// (_bucket/_sum/_count) merge with existing labels correctly.

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace crowdlearn::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }

  /// Overwrite the count. Checkpoint restore only — hot paths must stay
  /// monotonic through inc().
  void restore(std::uint64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (also supports accumulate via add()).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept {
    // CAS loop instead of fetch_add(double): portable across libstdc++
    // versions that predate the C++20 floating-point atomic operations.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with inclusive upper bounds (Prometheus `le`).
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing; an implicit
  /// +Inf overflow bucket is appended.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  /// A consistent point-in-time view: bucket_counts.size() ==
  /// upper_bounds.size() + 1 (last is the +Inf overflow bucket) and the
  /// bucket counts always sum to `count`.
  struct Snapshot {
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> bucket_counts;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< meaningful only when count > 0
    double max = 0.0;  ///< meaningful only when count > 0
    double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  };
  Snapshot snapshot() const;

  /// Overwrite the full histogram state from a snapshot. Checkpoint restore
  /// only. Throws std::invalid_argument unless the snapshot's bounds match
  /// this histogram's bounds and its bucket counts sum to its total count.
  void restore(const Snapshot& s);

  const std::vector<double>& upper_bounds() const { return bounds_; }

  /// {start, start+width, ..., start+(count-1)*width}
  static std::vector<double> linear_bounds(double start, double width, std::size_t count);
  /// {start, start*factor, ..., start*factor^(count-1)}
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t count);

 private:
  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// One exported series in a registry snapshot.
struct MetricSample {
  std::string name;
  MetricType type = MetricType::kCounter;
  double value = 0.0;           ///< counter (as double) or gauge value
  Histogram::Snapshot histogram;  ///< populated for kHistogram only
};

/// Name-keyed registry, sharded by name hash so unrelated get-or-create
/// calls from different threads do not contend on one mutex. Lookups happen
/// at wiring time only; the returned references stay valid until the
/// registry is destroyed.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::size_t num_shards = 8);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. Throws std::logic_error if `name` is already registered
  /// as a different metric type.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// For an existing histogram the bounds argument is ignored.
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds);

  /// nullptr when the series does not exist (or has a different type).
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::size_t size() const;

  /// All series, sorted by name. Each histogram sample is internally
  /// consistent (see Histogram::Snapshot); the snapshot as a whole is a
  /// per-series-consistent view, not a global atomic cut.
  std::vector<MetricSample> snapshot() const;

  /// Prometheus text exposition format (one block per series, sorted).
  void write_prometheus(std::ostream& os) const;
  /// Single JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void write_json(std::ostream& os) const;
  /// Same JSON shape over the series `keep` accepts — used by the recorder's
  /// deterministic export, which drops wall-clock timing series so two
  /// equal-state runs compare byte-identical (docs/CHECKPOINTING.md).
  void write_json(std::ostream& os,
                  const std::function<bool(const MetricSample&)>& keep) const;

  /// Encode labels into a series name: labeled("x", {{"a","1"}}) == x{a="1"}.
  static std::string labeled(
      const std::string& base,
      std::initializer_list<std::pair<const char*, std::string>> labels);

 private:
  struct Entry {
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, Entry> entries;
  };

  Shard& shard_for(const std::string& name) const;

  mutable std::vector<Shard> shards_;
};

}  // namespace crowdlearn::obs
