#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

namespace crowdlearn::obs {

Tracer::Tracer() : origin_(std::chrono::steady_clock::now()) {}

std::int64_t Tracer::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

void Tracer::record(TraceEvent ev) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(ev));
}

void Tracer::instant(const char* name, const char* category) {
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.ts_us = now_us();
  ev.instant = true;
  ev.tid = tid_for_current_thread();
  record(std::move(ev));
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

int Tracer::tid_for_current_thread() {
  const std::thread::id id = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = thread_ids_.find(id);
  if (it == thread_ids_.end()) {
    it = thread_ids_.emplace(id, static_cast<int>(thread_ids_.size())).first;
  }
  return it->second;
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      default: os << c; break;
    }
  }
}

}  // namespace

void Tracer::write_chrome_trace(std::ostream& os) const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = events_;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"";
    json_escape(os, ev.name);
    os << "\",\"cat\":\"";
    json_escape(os, ev.category);
    os << "\",\"ph\":\"" << (ev.instant ? 'i' : 'X') << "\"";
    os << ",\"ts\":" << ev.ts_us;
    if (!ev.instant) os << ",\"dur\":" << ev.dur_us;
    os << ",\"pid\":1,\"tid\":" << ev.tid;
    if (ev.instant) os << ",\"s\":\"t\"";
    if (!ev.args.empty()) {
      os << ",\"args\":{";
      bool afirst = true;
      for (const auto& [k, v] : ev.args) {
        if (!afirst) os << ',';
        afirst = false;
        os << '"';
        json_escape(os, k);
        os << "\":";
        std::ostringstream num;
        num.precision(17);
        num << v;
        os << num.str();
      }
      os << '}';
    }
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
}

bool Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out);
  return static_cast<bool>(out);
}

}  // namespace crowdlearn::obs
