#include "obs/metrics.hpp"

#include <algorithm>
#include <functional>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace crowdlearn::obs {

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: upper_bounds must be non-empty");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument("Histogram: upper_bounds must be strictly increasing");
    }
  }
}

void Histogram::observe(double v) noexcept {
  // First bucket with v <= bound; overflow bucket when v > bounds_.back().
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_[idx];
  ++count_;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.upper_bounds = bounds_;
  std::lock_guard<std::mutex> lock(mutex_);
  s.bucket_counts = counts_;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  return s;
}

void Histogram::restore(const Snapshot& s) {
  if (s.upper_bounds != bounds_)
    throw std::invalid_argument("Histogram::restore: bucket bounds mismatch");
  if (s.bucket_counts.size() != bounds_.size() + 1)
    throw std::invalid_argument("Histogram::restore: bucket count size mismatch");
  std::uint64_t total = 0;
  for (std::uint64_t c : s.bucket_counts) total += c;
  if (total != s.count)
    throw std::invalid_argument("Histogram::restore: bucket counts do not sum to count");
  std::lock_guard<std::mutex> lock(mutex_);
  counts_ = s.bucket_counts;
  count_ = s.count;
  sum_ = s.sum;
  min_ = s.min;
  max_ = s.max;
}

std::vector<double> Histogram::linear_bounds(double start, double width,
                                             std::size_t count) {
  std::vector<double> b(count);
  for (std::size_t i = 0; i < count; ++i) b[i] = start + width * static_cast<double>(i);
  return b;
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  std::vector<double> b(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i, v *= factor) b[i] = v;
  return b;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry::MetricsRegistry(std::size_t num_shards)
    : shards_(num_shards == 0 ? 1 : num_shards) {}

MetricsRegistry::Shard& MetricsRegistry::shard_for(const std::string& name) const {
  const std::size_t h = std::hash<std::string>{}(name);
  return shards_[h % shards_.size()];
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Shard& s = shard_for(name);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.entries.find(name);
  if (it == s.entries.end()) {
    Entry e;
    e.type = MetricType::kCounter;
    e.counter = std::make_unique<Counter>();
    it = s.entries.emplace(name, std::move(e)).first;
  } else if (it->second.type != MetricType::kCounter) {
    throw std::logic_error("MetricsRegistry: '" + name +
                           "' already registered with a different type");
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Shard& s = shard_for(name);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.entries.find(name);
  if (it == s.entries.end()) {
    Entry e;
    e.type = MetricType::kGauge;
    e.gauge = std::make_unique<Gauge>();
    it = s.entries.emplace(name, std::move(e)).first;
  } else if (it->second.type != MetricType::kGauge) {
    throw std::logic_error("MetricsRegistry: '" + name +
                           "' already registered with a different type");
  }
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  Shard& s = shard_for(name);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.entries.find(name);
  if (it == s.entries.end()) {
    Entry e;
    e.type = MetricType::kHistogram;
    e.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
    it = s.entries.emplace(name, std::move(e)).first;
  } else if (it->second.type != MetricType::kHistogram) {
    throw std::logic_error("MetricsRegistry: '" + name +
                           "' already registered with a different type");
  }
  return *it->second.histogram;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  Shard& s = shard_for(name);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.entries.find(name);
  if (it == s.entries.end() || it->second.type != MetricType::kCounter) return nullptr;
  return it->second.counter.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  Shard& s = shard_for(name);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.entries.find(name);
  if (it == s.entries.end() || it->second.type != MetricType::kGauge) return nullptr;
  return it->second.gauge.get();
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  Shard& s = shard_for(name);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.entries.find(name);
  if (it == s.entries.end() || it->second.type != MetricType::kHistogram) return nullptr;
  return it->second.histogram.get();
}

std::size_t MetricsRegistry::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    n += s.entries.size();
  }
  return n;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricSample> out;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    for (const auto& [name, entry] : s.entries) {
      MetricSample ms;
      ms.name = name;
      ms.type = entry.type;
      switch (entry.type) {
        case MetricType::kCounter:
          ms.value = static_cast<double>(entry.counter->value());
          break;
        case MetricType::kGauge:
          ms.value = entry.gauge->value();
          break;
        case MetricType::kHistogram:
          ms.histogram = entry.histogram->snapshot();
          break;
      }
      out.push_back(std::move(ms));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return out;
}

namespace {

// Splits "base{k="v"}" into {"base", "k=\"v\""} ("" labels when absent).
std::pair<std::string, std::string> split_labels(const std::string& name) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos) return {name, ""};
  std::string labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.pop_back();
  return {name.substr(0, brace), labels};
}

// Re-joins a base name with labels plus one extra label appended.
std::string with_extra_label(const std::string& base, const std::string& labels,
                             const std::string& extra) {
  std::string out = base;
  out += '{';
  if (!labels.empty()) {
    out += labels;
    out += ',';
  }
  out += extra;
  out += '}';
  return out;
}

std::string format_double(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c; break;
    }
  }
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  for (const MetricSample& ms : snapshot()) {
    const auto [base, labels] = split_labels(ms.name);
    switch (ms.type) {
      case MetricType::kCounter:
        os << "# TYPE " << base << " counter\n";
        os << ms.name << ' ' << static_cast<std::uint64_t>(ms.value) << '\n';
        break;
      case MetricType::kGauge:
        os << "# TYPE " << base << " gauge\n";
        os << ms.name << ' ' << format_double(ms.value) << '\n';
        break;
      case MetricType::kHistogram: {
        os << "# TYPE " << base << " histogram\n";
        const Histogram::Snapshot& h = ms.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
          cumulative += h.bucket_counts[i];
          os << with_extra_label(base + "_bucket", labels,
                                 "le=\"" + format_double(h.upper_bounds[i]) + "\"")
             << ' ' << cumulative << '\n';
        }
        cumulative += h.bucket_counts.back();
        os << with_extra_label(base + "_bucket", labels, "le=\"+Inf\"") << ' '
           << cumulative << '\n';
        os << base + "_sum" << (labels.empty() ? "" : "{" + labels + "}") << ' '
           << format_double(h.sum) << '\n';
        os << base + "_count" << (labels.empty() ? "" : "{" + labels + "}") << ' '
           << h.count << '\n';
        break;
      }
    }
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  write_json(os, [](const MetricSample&) { return true; });
}

void MetricsRegistry::write_json(
    std::ostream& os, const std::function<bool(const MetricSample&)>& keep) const {
  std::vector<MetricSample> all = snapshot();
  std::erase_if(all, [&](const MetricSample& ms) { return !keep(ms); });
  auto emit_group = [&](MetricType type, const char* key, auto emit_value) {
    os << '"' << key << "\":{";
    bool first = true;
    for (const MetricSample& ms : all) {
      if (ms.type != type) continue;
      if (!first) os << ',';
      first = false;
      os << '"';
      json_escape(os, ms.name);
      os << "\":";
      emit_value(ms);
    }
    os << '}';
  };
  os << '{';
  emit_group(MetricType::kCounter, "counters", [&](const MetricSample& ms) {
    os << static_cast<std::uint64_t>(ms.value);
  });
  os << ',';
  emit_group(MetricType::kGauge, "gauges", [&](const MetricSample& ms) {
    os << format_double(ms.value);
  });
  os << ',';
  emit_group(MetricType::kHistogram, "histograms", [&](const MetricSample& ms) {
    const Histogram::Snapshot& h = ms.histogram;
    os << "{\"count\":" << h.count << ",\"sum\":" << format_double(h.sum);
    if (h.count > 0) {
      os << ",\"min\":" << format_double(h.min) << ",\"max\":" << format_double(h.max);
    }
    os << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i) os << ',';
      os << "{\"le\":";
      if (i < h.upper_bounds.size()) {
        os << format_double(h.upper_bounds[i]);
      } else {
        os << "\"+Inf\"";
      }
      os << ",\"count\":" << h.bucket_counts[i] << '}';
    }
    os << "]}";
  });
  os << '}';
}

std::string MetricsRegistry::labeled(
    const std::string& base,
    std::initializer_list<std::pair<const char*, std::string>> labels) {
  std::string out = base;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace crowdlearn::obs
