#pragma once
// Nested-span tracer emitting Chrome trace_event JSON ("complete" events,
// ph="X") so a sensing cycle can be opened directly in about:tracing or
// https://ui.perfetto.dev. Timings come from std::chrono::steady_clock and
// are recorded relative to the tracer's construction, in microseconds.
//
// Usage (hot paths use the nullable RAII form so a disabled tracer costs a
// single pointer test):
//
//   obs::SpanScope span(tracer, "committee.votes_batch", "experts");
//   ... work ...
//   span.arg("images", n);   // optional numeric args, attached on close
//
// The tracer never draws randomness and never feeds back into control flow,
// so enabling it cannot perturb the determinism contract.

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace crowdlearn::obs {

/// One finished span (or instant event when dur_us < 0 is not used; instants
/// are stored with dur_us == 0 and instant == true).
struct TraceEvent {
  std::string name;
  std::string category;
  std::int64_t ts_us = 0;   ///< start, microseconds since tracer construction
  std::int64_t dur_us = 0;  ///< duration in microseconds
  int tid = 0;              ///< small dense id assigned per OS thread
  bool instant = false;
  std::vector<std::pair<std::string, double>> args;
};

class Tracer {
 public:
  Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Microseconds since construction (steady clock).
  std::int64_t now_us() const;

  /// Record a finished span. Thread-safe.
  void record(TraceEvent ev);

  /// Zero-duration marker ("instant" event, rendered as a vertical tick).
  void instant(const char* name, const char* category = "mark");

  std::size_t event_count() const;
  void clear();

  /// Chrome trace_event JSON: {"traceEvents":[...]}. Load in about:tracing
  /// or Perfetto. Events are sorted by timestamp for stable output.
  void write_chrome_trace(std::ostream& os) const;
  bool write_chrome_trace_file(const std::string& path) const;

  /// Dense per-thread id for the calling thread (assigned on first use).
  int tid_for_current_thread();

 private:
  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::unordered_map<std::thread::id, int> thread_ids_;
};

/// RAII span. Constructed against a nullable Tracer*: with nullptr every
/// member is a no-op, so instrumentation sites pay one branch when tracing
/// is off. Times the scope with steady_clock and records on destruction.
class SpanScope {
 public:
  SpanScope(Tracer* tracer, const char* name, const char* category)
      : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    ev_.name = name;
    ev_.category = category;
    ev_.ts_us = tracer_->now_us();
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Attach a numeric argument, shown in the trace viewer's details pane.
  void arg(const char* key, double value) {
    if (tracer_ == nullptr) return;
    ev_.args.emplace_back(key, value);
  }

  ~SpanScope() {
    if (tracer_ == nullptr) return;
    ev_.dur_us = tracer_->now_us() - ev_.ts_us;
    ev_.tid = tracer_->tid_for_current_thread();
    tracer_->record(std::move(ev_));
  }

 private:
  Tracer* tracer_;
  TraceEvent ev_;
};

}  // namespace crowdlearn::obs
