#include "util/thread_pool.hpp"

#include <cstdlib>

namespace crowdlearn::util {

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("CROWDLEARN_THREADS")) {
    // strtoul silently negates "-3" to a huge value, so parse as signed and
    // cap at a sane ceiling; malformed or out-of-range values fall through.
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v <= 4096) return static_cast<std::size_t>(v);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

ThreadPool*& ThreadPool::current_pool() {
  static thread_local ThreadPool* current = nullptr;
  return current;
}

ThreadPool::ThreadPool(std::size_t num_threads) : threads_(resolve_thread_count(num_threads)) {
  if (threads_ < 2) return;  // inline mode: no workers, submit() runs on the caller
  workers_.reserve(threads_);
  for (std::size_t i = 0; i < threads_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
}

void ThreadPool::worker_loop() {
  current_pool() = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
      update_queue_depth_locked();
    }
    task();  // instrumented wrapper; packaged_task captures any exception
  }
}

void ThreadPool::set_observability(obs::Observability* o) {
  if (!obs::active(o)) {
    obs_tasks_total_.store(nullptr, std::memory_order_release);
    obs_queue_depth_.store(nullptr, std::memory_order_release);
    obs_task_seconds_.store(nullptr, std::memory_order_release);
    return;
  }
  obs::MetricsRegistry& m = o->metrics();
  obs_tasks_total_.store(&m.counter("crowdlearn_pool_tasks_total"),
                         std::memory_order_release);
  obs_queue_depth_.store(&m.gauge("crowdlearn_pool_queue_depth"),
                         std::memory_order_release);
  obs_task_seconds_.store(
      &m.histogram("crowdlearn_pool_task_seconds",
                   obs::Histogram::exponential_bounds(1e-6, 4.0, 12)),
      std::memory_order_release);
}

}  // namespace crowdlearn::util
