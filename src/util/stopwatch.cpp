#include "util/stopwatch.hpp"

namespace crowdlearn {

double Stopwatch::elapsed_seconds() const {
  return std::chrono::duration<double>(clock::now() - start_).count();
}

}  // namespace crowdlearn
