#pragma once
// Top-level exception guard for executables. Every example and bench binary
// wraps its real entry point with run_guarded so that any uncaught exception
// — including the typed refusals the fault-injecting platform can raise —
// prints a diagnostic and exits nonzero instead of calling std::terminate.

#include <cstdio>
#include <exception>
#include <utility>

namespace crowdlearn::util {

template <typename F, typename... Args>
int run_guarded(F&& body, Args&&... args) {
  try {
    return std::forward<F>(body)(std::forward<Args>(args)...);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: %s\n", e.what());
  } catch (...) {
    std::fprintf(stderr, "fatal: unknown exception\n");
  }
  return 1;
}

}  // namespace crowdlearn::util
