#pragma once
// Minimal CSV / fixed-width table emitters used by the benchmark harness to
// print paper-style tables and figure series.

#include <ostream>
#include <string>
#include <vector>

namespace crowdlearn {

/// Accumulates rows and prints either an aligned ASCII table (for terminal
/// inspection, mirroring the paper's tables) or CSV (for plotting).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Format a double with fixed precision.
  static std::string num(double v, int precision = 3);

  void print_ascii(std::ostream& os) const;
  void print_csv(std::ostream& os) const { print_csv(os, true); }
  /// CSV with the header row optionally suppressed (for appending rows to an
  /// existing file, e.g. the resumed half of a checkpointed run's cycle log).
  void print_csv(std::ostream& os, bool include_header) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escape a CSV field (quotes fields containing comma/quote/newline).
std::string csv_escape(const std::string& field);

}  // namespace crowdlearn
