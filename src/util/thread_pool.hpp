#pragma once
// Deterministic thread-pool parallelism.
//
// The library's reproducibility contract is bit-identical outputs per seed,
// so the pool is built around three rules that every caller must follow:
//   1. Static chunking: work over [0, n) is split into at most size()
//      contiguous chunks whose boundaries depend only on n and size() — never
//      on timing — and each chunk writes to disjoint, preallocated slots.
//   2. Ordered reduction: chunk/task results are combined on the calling
//      thread in index order; no atomics-based accumulation of doubles.
//   3. Pre-split randomness: tasks never draw from a shared Rng. Callers fork
//      one child stream per task from the master seed *before* dispatch.
// Under those rules the outputs are byte-identical for any thread count,
// which tests/test_determinism.cpp locks in.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/observability.hpp"

namespace crowdlearn::util {

/// Thread count used by a component: an explicit request wins, otherwise the
/// CROWDLEARN_THREADS environment variable, otherwise hardware_concurrency
/// (never less than 1).
std::size_t resolve_thread_count(std::size_t requested = 0);

/// Fixed-size worker pool with exception-propagating futures.
///
/// A pool constructed with one thread spawns no workers at all: submit() runs
/// the task inline on the caller, so serial runs pay zero synchronization
/// cost and single-threaded determinism is trivial. Calls into the pool from
/// one of its own workers also run inline, which makes accidental nesting
/// (a parallel section reached from inside a task) safe instead of a
/// deadlock.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (>= 1; 1 means inline execution).
  std::size_t size() const { return threads_; }

  /// Stop accepting tasks, finish the queued ones and join the workers.
  /// Idempotent; called by the destructor. submit() afterwards throws.
  void shutdown();

  /// Wire (or unwire, with an inactive/null context) pool metrics: task
  /// count, per-task latency histogram, and queue depth gauge. Handles are
  /// atomics because workers may already be running when this is called; the
  /// Observability object must outlive the pool. Never affects scheduling.
  void set_observability(obs::Observability* o);

  /// Queue one task. The returned future carries the result or the thrown
  /// exception. Runs inline when the pool is single-threaded, already shut
  /// down tasks throw, or when called from one of this pool's own workers.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    bool inline_run = workers_.empty() || current_pool() == this;
    if (!inline_run) {
      std::unique_lock<std::mutex> lock(mutex_);
      if (shutdown_) throw std::runtime_error("ThreadPool::submit after shutdown");
      queue_.push([this, task] { run_instrumented(*task); });
      update_queue_depth_locked();
      lock.unlock();
      cv_.notify_one();
      return fut;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (shutdown_) throw std::runtime_error("ThreadPool::submit after shutdown");
    }
    run_instrumented(*task);
    return fut;
  }

  /// Run fn(begin, end) over static contiguous chunks of [0, n), at most one
  /// chunk per worker. Waits for every chunk, then rethrows the first failure
  /// in chunk order. Chunk boundaries depend only on n and size().
  template <typename ChunkFn>
  void parallel_chunks(std::size_t n, ChunkFn&& fn) {
    parallel_chunks_grained(n, 1, std::forward<ChunkFn>(fn));
  }

  /// parallel_chunks with a minimum grain: the chunk count is additionally
  /// capped at n / min_grain, so no chunk is smaller than min_grain items
  /// (tiny workloads run inline instead of paying dispatch overhead). Chunk
  /// boundaries depend only on n, size() and min_grain — never on timing —
  /// so the determinism contract above is unchanged.
  template <typename ChunkFn>
  void parallel_chunks_grained(std::size_t n, std::size_t min_grain, ChunkFn&& fn) {
    if (n == 0) return;
    if (min_grain == 0) min_grain = 1;
    const std::size_t chunks = std::min({size(), n, std::max<std::size_t>(1, n / min_grain)});
    if (chunks <= 1 || current_pool() == this) {
      fn(std::size_t{0}, n);
      return;
    }
    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    const std::size_t base = n / chunks;
    const std::size_t extra = n % chunks;
    std::size_t begin = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t end = begin + base + (c < extra ? 1 : 0);
      futures.push_back(submit([&fn, begin, end] { fn(begin, end); }));
      begin = end;
    }
    wait_all(futures);
  }

  /// Run body(i) for every i in [0, n), chunked as in parallel_chunks.
  template <typename Body>
  void parallel_for(std::size_t n, Body&& body) {
    parallel_chunks(n, [&body](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }

  /// Wait on every future (so no task can outlive its captures), then
  /// rethrow the first exception in index order.
  static void wait_all(std::vector<std::future<void>>& futures) {
    std::exception_ptr first;
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
  }

 private:
  /// The pool whose worker is executing the current thread, if any.
  static ThreadPool*& current_pool();
  void worker_loop();

  /// Execute one task, recording count + latency when handles are wired.
  /// The metric path reads only the steady clock — no RNG, no feedback into
  /// scheduling — so determinism is unaffected.
  ///
  /// The count is recorded BEFORE the task body runs: executing a
  /// packaged_task makes its future ready, and a caller joining on that
  /// future may snapshot the registry immediately — a post-execution inc()
  /// could be missed by that snapshot, making tasks_total depend on
  /// scheduling (it must not: deterministic exports compare it bit-exactly).
  template <typename Task>
  void run_instrumented(Task& task) {
    obs::Histogram* hist = obs_task_seconds_.load(std::memory_order_acquire);
    obs::Counter* total = obs_tasks_total_.load(std::memory_order_acquire);
    if (hist == nullptr && total == nullptr) {
      task();
      return;
    }
    if (total != nullptr) total->inc();
    const auto t0 = std::chrono::steady_clock::now();
    task();  // packaged_task: exceptions land in the future, not here
    if (hist != nullptr) {
      hist->observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count());
    }
  }

  /// Publish queue_.size(); requires mutex_ held.
  void update_queue_depth_locked() {
    if (obs::Gauge* g = obs_queue_depth_.load(std::memory_order_acquire)) {
      g->set(static_cast<double>(queue_.size()));
    }
  }

  std::size_t threads_ = 1;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  std::atomic<obs::Counter*> obs_tasks_total_{nullptr};
  std::atomic<obs::Gauge*> obs_queue_depth_{nullptr};
  std::atomic<obs::Histogram*> obs_task_seconds_{nullptr};
};

}  // namespace crowdlearn::util
