#pragma once
// Deterministic random-number utilities.
//
// Every stochastic component in the library draws randomness through an
// explicitly seeded Rng so that experiments are reproducible bit-for-bit
// across runs with the same seed. Components that need independent streams
// should use Rng::fork() rather than sharing one generator, so that adding
// draws in one module does not perturb another.

#include <cstdint>
#include <random>
#include <vector>

namespace crowdlearn {

/// Thin wrapper over std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) : engine_(seed), seed_(seed) {}

  /// Seed this generator was constructed with (for logging/repro).
  std::uint64_t seed() const { return seed_; }

  /// Derive an independent child stream. Deterministic given the parent
  /// state: the child's seed is the next raw draw of the parent mixed with
  /// a splitmix-style finalizer.
  Rng fork();

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Standard normal draw scaled to (mean, stddev).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential draw with the given mean (not rate). Requires mean > 0.
  double exponential_mean(double mean);

  /// Log-normal draw parameterized by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma);

  /// Sample an index from an (unnormalized, non-negative) weight vector.
  /// Falls back to uniform if all weights are zero.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = index(i + 1);
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) without replacement (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  std::mt19937_64& engine() { return engine_; }

  /// Exact stream capture: the construction seed plus the engine's full
  /// textual state (std::mt19937_64 stream operators round-trip the state
  /// bit-for-bit). Draw sequences resume exactly where they stopped.
  std::string serialize() const;
  /// Restore a stream captured with serialize(). Throws
  /// std::invalid_argument on malformed input; the stream is unchanged then.
  void deserialize(const std::string& state);

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

/// splitmix64 finalizer; useful for deriving seeds from ids.
std::uint64_t mix_seed(std::uint64_t x);

}  // namespace crowdlearn
