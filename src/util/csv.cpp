#include "util/csv.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace crowdlearn {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TablePrinter: empty header");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("TablePrinter: row width mismatch");
  rows_.push_back(std::move(row));
}

std::string TablePrinter::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TablePrinter::print_ascii(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c)
      os << " " << std::left << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    os << "\n";
  };
  auto print_sep = [&] {
    os << "+";
    for (std::size_t c = 0; c < widths.size(); ++c) os << std::string(widths[c] + 2, '-') << "+";
    os << "\n";
  };

  print_sep();
  print_row(header_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}

void TablePrinter::print_csv(std::ostream& os, bool include_header) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << csv_escape(row[c]);
    }
    os << "\n";
  };
  if (include_header) emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace crowdlearn
