#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace crowdlearn {

std::uint64_t mix_seed(std::uint64_t x) {
  // splitmix64 finalizer (Steele, Lea, Flood 2014).
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Rng Rng::fork() { return Rng(mix_seed(engine_())); }

std::string Rng::serialize() const {
  std::ostringstream os;
  os << seed_ << ' ' << engine_;
  return os.str();
}

void Rng::deserialize(const std::string& state) {
  std::istringstream is(state);
  std::uint64_t seed = 0;
  std::mt19937_64 engine;
  if (!(is >> seed >> engine))
    throw std::invalid_argument("Rng::deserialize: malformed state string");
  seed_ = seed;
  engine_ = engine;
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  std::uniform_int_distribution<int> d(lo, hi);
  return d(engine_);
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: n must be > 0");
  std::uniform_int_distribution<std::size_t> d(0, n - 1);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  std::bernoulli_distribution d(p);
  return d(engine_);
}

double Rng::exponential_mean(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("Rng::exponential_mean: mean must be > 0");
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  std::lognormal_distribution<double> d(mu, sigma);
  return d(engine_);
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("Rng::categorical: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0 || !std::isfinite(w))
      throw std::invalid_argument("Rng::categorical: weights must be finite and >= 0");
    total += w;
  }
  if (total <= 0.0) return index(weights.size());
  double r = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  // Partial Fisher-Yates: first k entries become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace crowdlearn
