#pragma once
// Wall-clock stopwatch used to measure "algorithm delay" (Table III).

#include <chrono>

namespace crowdlearn {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double elapsed_seconds() const;

  /// Elapsed milliseconds since construction or last reset().
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace crowdlearn
