// Crowd-quality scenario: why CQC beats classical aggregation.
//
// Fits CQC (GBDT over labels + questionnaire) and the three baseline
// aggregators on the same gold-labeled pilot responses, evaluates them on
// fresh crowd answers, and breaks accuracy down by the image's failure mode
// — showing the questionnaire is what rescues fake/close-up/implicit images
// that fool a unanimous crowd-label vote.
//
// Usage: crowd_quality [seed]

#include <cstdlib>
#include <iostream>
#include <map>

#include "core/experiment.hpp"
#include "truth/filtering.hpp"
#include "truth/td_em.hpp"
#include "truth/voting.hpp"
#include "truth/weighted_voting.hpp"
#include "util/csv.hpp"
#include "util/guard.hpp"

static int run(int argc, char** argv) {
  using namespace crowdlearn;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::cout << "=== Crowd quality control (seed " << seed << ") ===\n\n";
  core::ExperimentSetup setup = core::make_default_setup(seed);

  // Training data: the pilot study's gold-labeled responses.
  const std::vector<truth::LabeledQuery> training =
      core::CqcModule::labeled_queries_from_pilot(setup.pilot, setup.data);
  std::cout << "Fitting aggregators on " << training.size() << " pilot responses\n";

  // Fresh evaluation responses over the whole test set at 8 cents.
  crowd::CrowdPlatform platform = core::make_platform(setup, 50);
  Rng ctx_rng(mix_seed(seed ^ 0xC0DE));
  std::vector<truth::LabeledQuery> eval_queries;
  std::vector<crowd::QueryResponse> eval_batch;
  for (std::size_t id : setup.data.test_indices) {
    const auto ctx = static_cast<dataset::TemporalContext>(ctx_rng.index(4));
    truth::LabeledQuery lq;
    lq.response = platform.post_query(id, 8.0, ctx);
    lq.true_label = dataset::label_index(setup.data.image(id).true_label);
    eval_batch.push_back(lq.response);
    eval_queries.push_back(std::move(lq));
  }
  std::cout << "Evaluating on " << eval_queries.size() << " fresh crowd queries\n\n";

  truth::CqcAggregator cqc;
  truth::MajorityVoting voting;
  truth::TdEm tdem;
  truth::FilteringAggregator filtering;
  truth::WeightedVoting weighted;
  std::vector<truth::Aggregator*> aggs{&cqc, &voting, &tdem, &filtering, &weighted};

  TablePrinter table({"aggregator", "overall", "normal", "fake", "close_up",
                      "low_resolution", "implicit"});
  for (truth::Aggregator* agg : aggs) {
    agg->fit(training);
    const std::vector<std::size_t> pred = agg->aggregate_labels(eval_batch);

    std::map<dataset::FailureMode, std::pair<std::size_t, std::size_t>> by_mode;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < eval_queries.size(); ++i) {
      const auto& img = setup.data.image(eval_batch[i].image_id);
      auto& [ok, total] = by_mode[img.failure];
      ++total;
      if (pred[i] == eval_queries[i].true_label) {
        ++ok;
        ++correct;
      }
    }
    auto mode_acc = [&](dataset::FailureMode m) {
      const auto it = by_mode.find(m);
      if (it == by_mode.end() || it->second.second == 0) return std::string("-");
      return TablePrinter::num(static_cast<double>(it->second.first) /
                               static_cast<double>(it->second.second));
    };
    table.add_row({agg->name(),
                   TablePrinter::num(static_cast<double>(correct) /
                                     static_cast<double>(eval_queries.size())),
                   mode_acc(dataset::FailureMode::kNone),
                   mode_acc(dataset::FailureMode::kFake),
                   mode_acc(dataset::FailureMode::kCloseUp),
                   mode_acc(dataset::FailureMode::kLowRes),
                   mode_acc(dataset::FailureMode::kImplicit)});
  }
  table.print_ascii(std::cout);

  std::cout << "\nExpected shape: all aggregators are comparable on normal images; CQC\n"
               "pulls ahead on the failure modes where the questionnaire carries the\n"
               "signal the severity votes miss.\n";
  return 0;
}

int main(int argc, char** argv) {
  return crowdlearn::util::run_guarded(run, argc, argv);
}
