// Quickstart: the smallest end-to-end CrowdLearn run.
//
// Generates a synthetic disaster-image dataset, runs the MTurk pilot study,
// initializes the CrowdLearn closed loop (QSS -> IPD -> CQC -> MIC), executes
// a handful of sensing cycles and prints what happened in each. Observability
// is enabled for the run, so it also drops two artifacts in the working
// directory (see docs/OBSERVABILITY.md):
//   quickstart_metrics.prom  - Prometheus text snapshot of every metric
//   quickstart_trace.json    - Chrome trace_event JSON (open in Perfetto)
//
// Usage: quickstart [seed]

#include <cstdlib>
#include <iostream>

#include "core/experiment.hpp"
#include "core/recorder.hpp"
#include "util/csv.hpp"
#include "util/guard.hpp"

static int run(int argc, char** argv) {
  using namespace crowdlearn;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::cout << "CrowdLearn quickstart (seed " << seed << ")\n\n";

  // A reduced setup so the quickstart finishes fast: 300 images, 8 cycles.
  core::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.dataset.total_images = 300;
  cfg.dataset.train_images = 220;
  cfg.dataset.seed = seed;
  cfg.stream.num_cycles = 8;
  cfg.stream.images_per_cycle = 10;
  cfg.stream.grouped_contexts = false;  // rotate contexts so all four appear
  cfg.pilot.queries_per_cell = 6;

  std::cout << "Generating dataset and running the pilot study...\n";
  core::ExperimentSetup setup = core::make_setup(cfg);
  std::cout << "  " << setup.data.images.size() << " images ("
            << setup.data.train_indices.size() << " train / "
            << setup.data.test_indices.size() << " test), "
            << setup.data.failure_count(setup.data.test_indices)
            << " failure-mode images in the test set\n\n";

  std::cout << "Training the committee (VGG16, BoVW, DDM) and CQC...\n";
  core::CrowdLearnConfig cl_cfg = core::default_crowdlearn_config(
      setup, /*queries_per_cycle=*/5,
      /*total_budget_cents=*/8.0 * 5.0 * static_cast<double>(cfg.stream.num_cycles));
  core::CrowdLearnRunner runner(cl_cfg);
  runner.system().enable_observability();
  runner.initialize(setup.data, &setup.pilot);

  crowd::CrowdPlatform platform = core::make_platform(setup, /*run_index=*/0);
  dataset::SensingCycleStream stream(setup.data, setup.stream_cfg);

  TablePrinter table({"cycle", "context", "queried", "incentive(c)", "crowd delay(s)",
                      "accuracy", "w(VGG16)", "w(BoVW)", "w(DDM)"});
  for (const dataset::SensingCycle& cycle : stream.cycles()) {
    const core::CycleOutcome out = runner.run_cycle(setup.data, platform, cycle);

    std::size_t correct = 0;
    for (std::size_t i = 0; i < out.image_ids.size(); ++i)
      if (out.predictions[i] ==
          dataset::label_index(setup.data.image(out.image_ids[i]).true_label))
        ++correct;

    double mean_incentive = 0.0;
    for (double c : out.incentives_cents) mean_incentive += c;
    if (!out.incentives_cents.empty())
      mean_incentive /= static_cast<double>(out.incentives_cents.size());

    table.add_row({std::to_string(out.cycle_index), dataset::context_name(out.context),
                   std::to_string(out.queried_ids.size()),
                   TablePrinter::num(mean_incentive, 1),
                   TablePrinter::num(out.crowd_delay_seconds, 0),
                   TablePrinter::num(static_cast<double>(correct) /
                                         static_cast<double>(out.image_ids.size()),
                                     2),
                   TablePrinter::num(out.expert_weights.at(0), 2),
                   TablePrinter::num(out.expert_weights.at(1), 2),
                   TablePrinter::num(out.expert_weights.at(2), 2)});
  }
  table.print_ascii(std::cout);

  std::cout << "\nTotal crowd spend: " << platform.total_spent_cents() << " cents\n";

  if (const obs::Observability* o = runner.system().observability()) {
    const obs::MetricsRegistry& reg = o->metrics();
    std::cout << "\nObservability (" << reg.size() << " series collected):\n";
    if (const obs::Counter* c = reg.find_counter("crowdlearn_broker_retries_total"))
      std::cout << "  broker escalation retries: " << c->value() << "\n";
    if (const obs::Histogram* h =
            reg.find_histogram("crowdlearn_cycle_crowd_delay_seconds"))
      std::cout << "  mean crowd delay: " << h->snapshot().mean() << " s\n";
    core::write_metrics_text_file(o, "quickstart_metrics.prom");
    core::write_trace_file(o, "quickstart_trace.json");
    std::cout << "  wrote quickstart_metrics.prom and quickstart_trace.json "
                 "(load the trace at https://ui.perfetto.dev)\n";
  }

  std::cout << "\nDone. See examples/disaster_response.cpp for the full evaluation.\n";
  return 0;
}

int main(int argc, char** argv) {
  return crowdlearn::util::run_guarded(run, argc, argv);
}
