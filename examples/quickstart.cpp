// Quickstart: the smallest end-to-end CrowdLearn run.
//
// Generates a synthetic disaster-image dataset, runs the MTurk pilot study,
// initializes the CrowdLearn closed loop (QSS -> IPD -> CQC -> MIC), executes
// a handful of sensing cycles and prints what happened in each. Observability
// is enabled for the run, so it also drops two artifacts in the working
// directory (see docs/OBSERVABILITY.md):
//   quickstart_metrics.prom  - Prometheus text snapshot of every metric
//   quickstart_trace.json    - Chrome trace_event JSON (open in Perfetto)
//
// Usage: quickstart [seed] [flags]
//   --cycles N          run an N-cycle stream (default 8)
//   --stop-after K      execute only the first K remaining cycles
//   --checkpoint PATH   save the full loop state to PATH after the last cycle
//   --resume PATH       restore the loop state from PATH instead of training
//                       from scratch; already-run cycles are skipped
//   --cycle-log PATH    write/append the deterministic per-cycle CSV log
//   --metrics-json PATH write the deterministic metrics JSON snapshot
//
// The checkpoint flags demonstrate docs/CHECKPOINTING.md: running
//   quickstart 42 --cycles 8 --stop-after 5 --checkpoint ckpt.bin --cycle-log a.csv
//   quickstart 42 --cycles 8 --resume ckpt.bin --cycle-log a.csv
// produces a cycle log byte-identical to the single uninterrupted run.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/io.hpp"
#include "core/experiment.hpp"
#include "core/recorder.hpp"
#include "util/csv.hpp"
#include "util/guard.hpp"

namespace {

struct CliOptions {
  std::uint64_t seed = 42;
  std::size_t num_cycles = 8;
  std::size_t stop_after = 0;  // 0 = run to the end of the stream
  std::string checkpoint_path;
  std::string resume_path;
  std::string cycle_log_path;
  std::string metrics_json_path;
};

CliOptions parse_cli(int argc, char** argv) {
  CliOptions opt;
  auto value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc)
      throw std::invalid_argument(std::string(flag) + " requires a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--cycles") == 0)
      opt.num_cycles = std::strtoull(value(i, a).c_str(), nullptr, 10);
    else if (std::strcmp(a, "--stop-after") == 0)
      opt.stop_after = std::strtoull(value(i, a).c_str(), nullptr, 10);
    else if (std::strcmp(a, "--checkpoint") == 0)
      opt.checkpoint_path = value(i, a);
    else if (std::strcmp(a, "--resume") == 0)
      opt.resume_path = value(i, a);
    else if (std::strcmp(a, "--cycle-log") == 0)
      opt.cycle_log_path = value(i, a);
    else if (std::strcmp(a, "--metrics-json") == 0)
      opt.metrics_json_path = value(i, a);
    else if (a[0] == '-')
      throw std::invalid_argument(std::string("unknown flag: ") + a);
    else
      opt.seed = std::strtoull(a, nullptr, 10);
  }
  if (opt.num_cycles == 0) throw std::invalid_argument("--cycles must be positive");
  return opt;
}

}  // namespace

static int run(int argc, char** argv) {
  using namespace crowdlearn;
  const CliOptions opt = parse_cli(argc, argv);

  std::cout << "CrowdLearn quickstart (seed " << opt.seed << ")\n\n";

  // A reduced setup so the quickstart finishes fast: 300 images. A resumed
  // run MUST rebuild this setup with the same knobs — the checkpoint holds
  // the loop's mutable state, not the dataset or configuration.
  core::ExperimentConfig cfg;
  cfg.seed = opt.seed;
  cfg.dataset.total_images = 300;
  cfg.dataset.train_images = 220;
  cfg.dataset.seed = opt.seed;
  cfg.stream.num_cycles = opt.num_cycles;
  cfg.stream.images_per_cycle = 10;
  cfg.stream.grouped_contexts = false;  // rotate contexts so all four appear
  cfg.pilot.queries_per_cell = 6;

  std::cout << "Generating dataset and running the pilot study...\n";
  core::ExperimentSetup setup = core::make_setup(cfg);
  std::cout << "  " << setup.data.images.size() << " images ("
            << setup.data.train_indices.size() << " train / "
            << setup.data.test_indices.size() << " test), "
            << setup.data.failure_count(setup.data.test_indices)
            << " failure-mode images in the test set\n\n";

  core::CrowdLearnConfig cl_cfg = core::default_crowdlearn_config(
      setup, /*queries_per_cycle=*/5,
      /*total_budget_cents=*/8.0 * 5.0 * static_cast<double>(opt.num_cycles));
  core::CrowdLearnRunner runner(cl_cfg);
  runner.system().enable_observability();

  crowd::CrowdPlatform platform = core::make_platform(setup, /*run_index=*/0);
  dataset::SensingCycleStream stream(setup.data, setup.stream_cfg);

  if (!opt.resume_path.empty()) {
    std::cout << "Resuming from checkpoint " << opt.resume_path << "...\n";
    runner.system().resume_from(opt.resume_path, &platform);
    std::cout << "  " << runner.system().cycles_run() << " cycles already run\n\n";
  } else {
    std::cout << "Training the committee (VGG16, BoVW, DDM) and CQC...\n";
    runner.initialize(setup.data, &setup.pilot);
  }

  const std::size_t first_cycle = runner.system().cycles_run();
  std::size_t budget = opt.stop_after == 0 ? stream.cycles().size() : opt.stop_after;

  TablePrinter table({"cycle", "context", "queried", "incentive(c)", "crowd delay(s)",
                      "accuracy", "w(VGG16)", "w(BoVW)", "w(DDM)"});
  std::vector<core::CycleOutcome> outcomes;
  for (const dataset::SensingCycle& cycle : stream.cycles()) {
    if (cycle.index < first_cycle) continue;  // already covered by the checkpoint
    if (budget == 0) break;
    --budget;
    core::CycleOutcome out = runner.run_cycle(setup.data, platform, cycle);

    std::size_t correct = 0;
    for (std::size_t i = 0; i < out.image_ids.size(); ++i)
      if (out.predictions[i] ==
          dataset::label_index(setup.data.image(out.image_ids[i]).true_label))
        ++correct;

    double mean_incentive = 0.0;
    for (double c : out.incentives_cents) mean_incentive += c;
    if (!out.incentives_cents.empty())
      mean_incentive /= static_cast<double>(out.incentives_cents.size());

    table.add_row({std::to_string(out.cycle_index), dataset::context_name(out.context),
                   std::to_string(out.queried_ids.size()),
                   TablePrinter::num(mean_incentive, 1),
                   TablePrinter::num(out.crowd_delay_seconds, 0),
                   TablePrinter::num(static_cast<double>(correct) /
                                         static_cast<double>(out.image_ids.size()),
                                     2),
                   TablePrinter::num(out.expert_weights.at(0), 2),
                   TablePrinter::num(out.expert_weights.at(1), 2),
                   TablePrinter::num(out.expert_weights.at(2), 2)});
    outcomes.push_back(std::move(out));
  }
  table.print_ascii(std::cout);

  std::cout << "\nTotal crowd spend: " << platform.total_spent_cents() << " cents\n";

  if (!opt.checkpoint_path.empty()) {
    runner.system().save_checkpoint(opt.checkpoint_path, &platform);
    std::cout << "Saved checkpoint to " << opt.checkpoint_path << " ("
              << runner.system().cycles_run() << " cycles run)\n";
  }
  if (!opt.cycle_log_path.empty()) {
    // On resume, append rows without a header so the two halves concatenate
    // into one valid CSV — byte-identical to the uninterrupted run's log.
    core::CycleLogOptions log_opts;
    log_opts.include_wall_clock = false;
    log_opts.include_header = opt.resume_path.empty();
    std::ofstream os(opt.cycle_log_path,
                     opt.resume_path.empty() ? std::ios::out : std::ios::app);
    if (!os) throw std::runtime_error("cannot open " + opt.cycle_log_path);
    core::write_cycle_log(setup.data, outcomes, os, log_opts);
    std::cout << "Wrote cycle log to " << opt.cycle_log_path << "\n";
  }
  if (!opt.metrics_json_path.empty()) {
    core::write_metrics_json_deterministic_file(runner.system().observability(),
                                                opt.metrics_json_path);
    std::cout << "Wrote deterministic metrics JSON to " << opt.metrics_json_path << "\n";
  }

  if (const obs::Observability* o = runner.system().observability()) {
    const obs::MetricsRegistry& reg = o->metrics();
    std::cout << "\nObservability (" << reg.size() << " series collected):\n";
    if (const obs::Counter* c = reg.find_counter("crowdlearn_broker_retries_total"))
      std::cout << "  broker escalation retries: " << c->value() << "\n";
    if (const obs::Histogram* h =
            reg.find_histogram("crowdlearn_cycle_crowd_delay_seconds"))
      std::cout << "  mean crowd delay: " << h->snapshot().mean() << " s\n";
    core::write_metrics_text_file(o, "quickstart_metrics.prom");
    core::write_trace_file(o, "quickstart_trace.json");
    std::cout << "  wrote quickstart_metrics.prom and quickstart_trace.json "
                 "(load the trace at https://ui.perfetto.dev)\n";
  }

  std::cout << "\nDone. See examples/disaster_response.cpp for the full evaluation.\n";
  return 0;
}

int main(int argc, char** argv) {
  return crowdlearn::util::run_guarded(run, argc, argv);
}
