// Quickstart: the smallest end-to-end CrowdLearn run.
//
// Generates a synthetic disaster-image dataset, runs the MTurk pilot study,
// initializes the CrowdLearn closed loop (QSS -> IPD -> CQC -> MIC), executes
// a handful of sensing cycles and prints what happened in each. Observability
// is enabled for the run, so it also drops two artifacts in the working
// directory (see docs/OBSERVABILITY.md):
//   quickstart_metrics.prom  - Prometheus text snapshot of every metric
//   quickstart_trace.json    - Chrome trace_event JSON (open in Perfetto)
//
// Usage: quickstart [seed] [flags]
//   --cycles N          run an N-cycle stream (default 8)
//   --images N          dataset size (default 300; --train must fit inside)
//   --train N           training-split size (default 220)
//   --fast-committee    two cheap BoVW experts instead of {VGG16, BoVW, DDM}
//   --threads N         worker threads (0 = auto; outputs identical anyway)
//   --stop-after K      execute only the first K remaining cycles (legacy path)
//   --checkpoint PATH   save the full loop state to PATH after the last cycle
//   --resume [PATH]     legacy: restore the loop state from the PATH file.
//                       With --supervise: no value — demand a loadable
//                       generation from the ring (exit 3 when none)
//   --cycle-log PATH    write/append the deterministic per-cycle CSV log
//   --metrics-json PATH write the deterministic metrics JSON snapshot
//   --weights-out PATH  final expert weights, one hexfloat per line
//   --cache-dir DIR     memoize expert/CQC retrains through a
//                       content-addressed artifact cache rooted at DIR
//                       (docs/CACHING.md; outputs identical either way)
//   --no-cache          explicitly disable the cache (the default)
//
// Supervised runtime (docs/RECOVERY.md):
//   --supervise DIR     run under runtime::Supervisor with a checkpoint
//                       generation ring in DIR (crash-safe, auto-recovery)
//   --ckpt-every K      checkpoint every K cycles (default 2)
//   --generations N     ring size (default 3)
//   --fault SPEC        arm a fault point, e.g. stage:qss:crash or
//                       ckpt:mid-write:io:1:0:1 (repeatable)
//   --max-retries N     snapshot retries per failed cycle (default 2)
//   --no-degraded       disable committee-only degraded completion
//   --strict-budget     exit 5 when the crowd budget dies mid-stream
//
// Exit codes (runtime::ExitCode, asserted by scripts/crash_drill.sh):
//   0 ok, 1 failure, 2 bad config, 3 checkpoint missing, 4 checkpoint
//   corrupt, 5 budget refused, 6 injected fault escaped, 70 crash fault.
//
// The checkpoint flags demonstrate docs/CHECKPOINTING.md: running
//   quickstart 42 --cycles 8 --stop-after 5 --checkpoint ckpt.bin --cycle-log a.csv
//   quickstart 42 --cycles 8 --resume ckpt.bin --cycle-log a.csv
// produces a cycle log byte-identical to the single uninterrupted run.

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/artifact_cache.hpp"
#include "ckpt/io.hpp"
#include "core/experiment.hpp"
#include "core/recorder.hpp"
#include "experts/bovw.hpp"
#include "runtime/exit.hpp"
#include "runtime/supervisor.hpp"
#include "util/csv.hpp"

namespace {

struct CliOptions {
  std::uint64_t seed = 42;
  std::size_t num_cycles = 8;
  std::size_t total_images = 300;
  std::size_t train_images = 220;
  bool fast_committee = false;
  std::size_t num_threads = 0;
  std::size_t stop_after = 0;  // 0 = run to the end of the stream
  std::string checkpoint_path;
  bool resume = false;
  std::string resume_path;  // legacy single-file resume
  std::string cycle_log_path;
  std::string metrics_json_path;
  std::string weights_out_path;
  std::string cache_dir;  // empty = no artifact cache (the default)
  bool no_cache = false;
  // Supervised runtime.
  std::string supervise_dir;
  std::size_t ckpt_every = 2;
  std::size_t generations = 3;
  std::size_t max_retries = 2;
  bool no_degraded = false;
  bool strict_budget = false;
  std::vector<std::string> fault_specs;
};

CliOptions parse_cli(int argc, char** argv) {
  CliOptions opt;
  auto value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc)
      throw std::invalid_argument(std::string(flag) + " requires a value");
    return argv[++i];
  };
  auto count = [&](int& i, const char* flag) -> std::size_t {
    return std::strtoull(value(i, flag).c_str(), nullptr, 10);
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--cycles") == 0)
      opt.num_cycles = count(i, a);
    else if (std::strcmp(a, "--images") == 0)
      opt.total_images = count(i, a);
    else if (std::strcmp(a, "--train") == 0)
      opt.train_images = count(i, a);
    else if (std::strcmp(a, "--fast-committee") == 0)
      opt.fast_committee = true;
    else if (std::strcmp(a, "--threads") == 0)
      opt.num_threads = count(i, a);
    else if (std::strcmp(a, "--stop-after") == 0)
      opt.stop_after = count(i, a);
    else if (std::strcmp(a, "--checkpoint") == 0)
      opt.checkpoint_path = value(i, a);
    else if (std::strcmp(a, "--resume") == 0) {
      opt.resume = true;
      // Legacy form carries a file path; the supervised form is bare.
      if (i + 1 < argc && argv[i + 1][0] != '-') opt.resume_path = argv[++i];
    } else if (std::strcmp(a, "--cycle-log") == 0)
      opt.cycle_log_path = value(i, a);
    else if (std::strcmp(a, "--metrics-json") == 0)
      opt.metrics_json_path = value(i, a);
    else if (std::strcmp(a, "--weights-out") == 0)
      opt.weights_out_path = value(i, a);
    else if (std::strcmp(a, "--cache-dir") == 0)
      opt.cache_dir = value(i, a);
    else if (std::strcmp(a, "--no-cache") == 0)
      opt.no_cache = true;
    else if (std::strcmp(a, "--supervise") == 0)
      opt.supervise_dir = value(i, a);
    else if (std::strcmp(a, "--ckpt-every") == 0)
      opt.ckpt_every = count(i, a);
    else if (std::strcmp(a, "--generations") == 0)
      opt.generations = count(i, a);
    else if (std::strcmp(a, "--fault") == 0)
      opt.fault_specs.push_back(value(i, a));
    else if (std::strcmp(a, "--max-retries") == 0)
      opt.max_retries = count(i, a);
    else if (std::strcmp(a, "--no-degraded") == 0)
      opt.no_degraded = true;
    else if (std::strcmp(a, "--strict-budget") == 0)
      opt.strict_budget = true;
    else if (a[0] == '-')
      throw std::invalid_argument(std::string("unknown flag: ") + a);
    else
      opt.seed = std::strtoull(a, nullptr, 10);
  }
  if (opt.num_cycles == 0) throw std::invalid_argument("--cycles must be positive");
  if (opt.no_cache && !opt.cache_dir.empty())
    throw std::invalid_argument("--no-cache and --cache-dir are mutually exclusive");
  if (opt.train_images >= opt.total_images)
    throw std::invalid_argument("--train must be smaller than --images");
  if (!opt.supervise_dir.empty()) {
    if (opt.stop_after != 0)
      throw std::invalid_argument("--stop-after is a legacy-path flag; with --supervise, "
                                  "interrupt with a crash fault instead");
    if (!opt.resume_path.empty())
      throw std::invalid_argument("with --supervise, --resume takes no value (the ring at " +
                                  opt.supervise_dir + " is the source)");
  } else {
    if (!opt.fault_specs.empty())
      throw std::invalid_argument("--fault requires --supervise");
    if (opt.resume && opt.resume_path.empty())
      throw std::invalid_argument("--resume needs a checkpoint path (or --supervise)");
  }
  return opt;
}

}  // namespace

static int run(int argc, char** argv) {
  using namespace crowdlearn;
  const CliOptions opt = parse_cli(argc, argv);
  const bool supervised = !opt.supervise_dir.empty();

  std::cout << "CrowdLearn quickstart (seed " << opt.seed << ")\n\n";

  // A reduced setup so the quickstart finishes fast. A resumed run MUST
  // rebuild this setup with the same knobs — the checkpoint holds the loop's
  // mutable state, not the dataset or configuration.
  core::ExperimentConfig cfg;
  cfg.seed = opt.seed;
  cfg.dataset.total_images = opt.total_images;
  cfg.dataset.train_images = opt.train_images;
  cfg.dataset.seed = opt.seed;
  cfg.stream.num_cycles = opt.num_cycles;
  cfg.stream.images_per_cycle = 10;
  cfg.stream.grouped_contexts = false;  // rotate contexts so all four appear
  cfg.pilot.queries_per_cell = 6;

  std::cout << "Generating dataset and running the pilot study...\n";
  core::ExperimentSetup setup = core::make_setup(cfg);
  std::cout << "  " << setup.data.images.size() << " images ("
            << setup.data.train_indices.size() << " train / "
            << setup.data.test_indices.size() << " test), "
            << setup.data.failure_count(setup.data.test_indices)
            << " failure-mode images in the test set\n\n";

  core::CrowdLearnConfig cl_cfg = core::default_crowdlearn_config(
      setup, /*queries_per_cycle=*/5,
      /*total_budget_cents=*/8.0 * 5.0 * static_cast<double>(opt.num_cycles));
  cl_cfg.num_threads = opt.num_threads;
  if (!opt.cache_dir.empty()) {
    cl_cfg.artifact_cache =
        std::make_shared<cache::ArtifactCache>(cache::ArtifactCacheConfig{opt.cache_dir, 0});
    std::cout << "Artifact cache at " << opt.cache_dir
              << " (retrains memoized; outputs unchanged — docs/CACHING.md)\n";
  }

  std::unique_ptr<core::CrowdLearnRunner> runner;
  if (opt.fast_committee) {
    experts::BovwConfig fast;
    fast.train.epochs = 10;
    fast.train.learning_rate = 0.05;
    std::vector<std::unique_ptr<experts::DdaAlgorithm>> roster;
    roster.push_back(std::make_unique<experts::BovwClassifier>(fast));
    roster.push_back(std::make_unique<experts::BovwClassifier>(fast));
    runner = std::make_unique<core::CrowdLearnRunner>(
        cl_cfg, experts::ExpertCommittee(std::move(roster)));
  } else {
    runner = std::make_unique<core::CrowdLearnRunner>(cl_cfg);
  }
  runner->system().enable_observability();

  crowd::CrowdPlatform platform = core::make_platform(setup, /*run_index=*/0);
  dataset::SensingCycleStream stream(setup.data, setup.stream_cfg);

  std::vector<core::CycleOutcome> outcomes;
  std::unique_ptr<runtime::Supervisor> supervisor;

  if (supervised) {
    runtime::SupervisorConfig scfg;
    scfg.checkpoint_dir = opt.supervise_dir;
    scfg.checkpoint_every = opt.ckpt_every;
    scfg.max_generations = opt.generations;
    scfg.max_retries = opt.max_retries;
    scfg.allow_degraded = !opt.no_degraded;
    scfg.fail_on_budget_exhausted = opt.strict_budget;
    scfg.require_resume = opt.resume;
    scfg.cycle_log_path = opt.cycle_log_path;
    scfg.cycle_log.include_wall_clock = false;
    for (const std::string& spec : opt.fault_specs)
      scfg.faults.push_back(runtime::parse_fault_spec(spec));
    supervisor = std::make_unique<runtime::Supervisor>(runner->system(), platform, scfg);

    std::cout << "Supervised runtime: ring " << opt.supervise_dir << " (every "
              << opt.ckpt_every << " cycles, " << opt.generations << " generations, "
              << scfg.faults.size() << " fault points armed)\n";
    const runtime::StartReport rep = supervisor->start(setup.data, setup.pilot);
    for (const auto& bad : rep.rejected)
      std::cout << "  skipped corrupt generation " << bad.path << " ("
                << ckpt::ckpt_errc_name(bad.code) << ")\n";
    if (rep.resumed)
      std::cout << "  resumed from generation " << rep.generation << " (" << rep.path
                << "), " << rep.cycles_run << " cycles already run\n\n";
    else
      std::cout << "  fresh start (generation 0 written)\n\n";

    outcomes = supervisor->run(setup.data, stream);
  } else {
    if (!opt.resume_path.empty()) {
      std::cout << "Resuming from checkpoint " << opt.resume_path << "...\n";
      runner->system().resume_from(opt.resume_path, &platform);
      std::cout << "  " << runner->system().cycles_run() << " cycles already run\n\n";
    } else {
      std::cout << "Training the committee and CQC...\n";
      runner->initialize(setup.data, &setup.pilot);
    }

    const std::size_t first_cycle = runner->system().cycles_run();
    std::size_t budget = opt.stop_after == 0 ? stream.cycles().size() : opt.stop_after;
    for (const dataset::SensingCycle& cycle : stream.cycles()) {
      if (cycle.index < first_cycle) continue;  // already covered by the checkpoint
      if (budget == 0) break;
      --budget;
      outcomes.push_back(runner->run_cycle(setup.data, platform, cycle));
    }
  }

  std::vector<std::string> columns{"cycle", "context", "queried", "incentive(c)",
                                   "crowd delay(s)", "accuracy"};
  const std::size_t num_experts =
      outcomes.empty() ? 0 : outcomes.front().expert_weights.size();
  for (std::size_t m = 0; m < num_experts; ++m)
    columns.push_back("w(expert" + std::to_string(m) + ")");
  TablePrinter table(columns);
  for (const core::CycleOutcome& out : outcomes) {
    std::size_t correct = 0;
    for (std::size_t i = 0; i < out.image_ids.size(); ++i)
      if (out.predictions[i] ==
          dataset::label_index(setup.data.image(out.image_ids[i]).true_label))
        ++correct;
    double mean_incentive = 0.0;
    for (double c : out.incentives_cents) mean_incentive += c;
    if (!out.incentives_cents.empty())
      mean_incentive /= static_cast<double>(out.incentives_cents.size());
    std::vector<std::string> row{std::to_string(out.cycle_index),
                                 dataset::context_name(out.context),
                                 std::to_string(out.queried_ids.size()),
                                 TablePrinter::num(mean_incentive, 1),
                                 TablePrinter::num(out.crowd_delay_seconds, 0),
                                 TablePrinter::num(static_cast<double>(correct) /
                                                       static_cast<double>(out.image_ids.size()),
                                                   2)};
    for (std::size_t m = 0; m < num_experts; ++m)
      row.push_back(m < out.expert_weights.size()
                        ? TablePrinter::num(out.expert_weights[m], 2)
                        : std::string(""));
    table.add_row(std::move(row));
  }
  table.print_ascii(std::cout);

  std::cout << "\nTotal crowd spend: " << platform.total_spent_cents() << " cents\n";

  if (cl_cfg.artifact_cache) {
    const cache::CacheStats cs = cl_cfg.artifact_cache->stats();
    std::cout << "Artifact cache: " << cs.hits << " hits / " << cs.misses
              << " misses, " << cs.stores << " stores\n";
  }

  if (supervisor) {
    const runtime::RecoveryStats& rs = supervisor->stats();
    if (rs.stage_failures + rs.checkpoint_failures + rs.resumes > 0)
      std::cout << "Recovery: " << rs.stage_failures << " stage failures, " << rs.retries
                << " retries, " << rs.rollbacks << " rollbacks (" << rs.replayed_cycles
                << " cycles replayed), " << rs.degraded_cycles << " degraded cycles, "
                << rs.checkpoint_failures << " checkpoint failures\n";
    std::cout << "Checkpoints: " << rs.checkpoints_written << " generations written to "
              << opt.supervise_dir << "\n";
  }

  if (!opt.checkpoint_path.empty()) {
    runner->system().save_checkpoint(opt.checkpoint_path, &platform);
    std::cout << "Saved checkpoint to " << opt.checkpoint_path << " ("
              << runner->system().cycles_run() << " cycles run)\n";
  }
  if (!opt.cycle_log_path.empty() && !supervised) {
    // On resume, append rows without a header so the two halves concatenate
    // into one valid CSV — byte-identical to the uninterrupted run's log.
    // (The supervised path streams the log row by row instead.)
    core::CycleLogOptions log_opts;
    log_opts.include_wall_clock = false;
    log_opts.include_header = opt.resume_path.empty();
    std::ofstream os(opt.cycle_log_path,
                     opt.resume_path.empty() ? std::ios::out : std::ios::app);
    if (!os) throw std::runtime_error("cannot open " + opt.cycle_log_path);
    core::write_cycle_log(setup.data, outcomes, os, log_opts);
  }
  if (!opt.cycle_log_path.empty())
    std::cout << "Wrote cycle log to " << opt.cycle_log_path << "\n";
  if (!opt.metrics_json_path.empty()) {
    core::write_metrics_json_deterministic_file(runner->system().observability(),
                                                opt.metrics_json_path);
    std::cout << "Wrote deterministic metrics JSON to " << opt.metrics_json_path << "\n";
  }
  if (!opt.weights_out_path.empty()) {
    std::ofstream os(opt.weights_out_path);
    if (!os) throw std::runtime_error("cannot open " + opt.weights_out_path);
    os << std::hexfloat;
    for (double w : runner->system().committee().weights()) os << w << "\n";
    if (!os) throw std::runtime_error("cannot write " + opt.weights_out_path);
    std::cout << "Wrote final expert weights to " << opt.weights_out_path << "\n";
  }

  if (const obs::Observability* o = runner->system().observability()) {
    const obs::MetricsRegistry& reg = o->metrics();
    std::cout << "\nObservability (" << reg.size() << " series collected):\n";
    if (const obs::Counter* c = reg.find_counter("crowdlearn_broker_retries_total"))
      std::cout << "  broker escalation retries: " << c->value() << "\n";
    if (const obs::Histogram* h =
            reg.find_histogram("crowdlearn_cycle_crowd_delay_seconds"))
      std::cout << "  mean crowd delay: " << h->snapshot().mean() << " s\n";
    core::write_metrics_text_file(o, "quickstart_metrics.prom");
    core::write_trace_file(o, "quickstart_trace.json");
    std::cout << "  wrote quickstart_metrics.prom and quickstart_trace.json "
                 "(load the trace at https://ui.perfetto.dev)\n";
  }

  std::cout << "\nDone. See examples/disaster_response.cpp for the full evaluation.\n";
  return 0;
}

int main(int argc, char** argv) {
  return crowdlearn::runtime::run_guarded_typed(run, argc, argv);
}
