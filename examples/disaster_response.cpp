// Disaster-response scenario: the paper's headline experiment end to end.
//
// Emulates a DDA deployment in the aftermath of an earthquake: 40 sensing
// cycles of 10 social-media images across four temporal contexts, comparing
// CrowdLearn against the strongest AI-only baseline (Ensemble) and the
// strongest hybrid baseline (Hybrid-AL), and reporting accuracy, delay and
// spend — the operational trade-off an emergency-response agency would see.
//
// Usage: disaster_response [seed]

#include <cstdlib>
#include <iostream>

#include "core/experiment.hpp"
#include "util/csv.hpp"
#include "util/guard.hpp"

static int run(int argc, char** argv) {
  using namespace crowdlearn;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::cout << "=== Disaster-response deployment scenario (seed " << seed << ") ===\n\n";
  core::ExperimentSetup setup = core::make_default_setup(seed);
  std::cout << "Dataset: " << setup.data.images.size() << " images, "
            << setup.data.test_indices.size() << " streamed over "
            << setup.stream_cfg.num_cycles << " sensing cycles\n\n";

  const double budget_cents = 1600.0;  // $16 across 200 queries
  const std::size_t queries = 5;

  std::vector<std::unique_ptr<core::SchemeRunner>> runners;
  runners.push_back(std::make_unique<core::CrowdLearnRunner>(
      core::default_crowdlearn_config(setup, queries, budget_cents)));
  runners.push_back(std::make_unique<core::AiOnlyRunner>(
      std::make_unique<experts::BoostedEnsemble>(experts::BoostedEnsemble::make_default())));
  core::HybridConfig hybrid_cfg;
  hybrid_cfg.queries_per_cycle = queries;
  hybrid_cfg.fixed_incentive_cents =
      core::fixed_incentive_for_budget(setup, queries, budget_cents);
  runners.push_back(std::make_unique<core::HybridAlRunner>(hybrid_cfg));

  TablePrinter table({"scheme", "accuracy", "macro F1", "AUC", "algo delay(s)",
                      "crowd delay(s)", "spend($)"});
  for (std::size_t i = 0; i < runners.size(); ++i) {
    std::cout << "Running " << runners[i]->name() << "...\n";
    const core::SchemeEvaluation eval = core::evaluate_scheme(*runners[i], setup, i);
    table.add_row({eval.name, TablePrinter::num(eval.report.accuracy),
                   TablePrinter::num(eval.report.f1), TablePrinter::num(eval.macro_auc),
                   TablePrinter::num(eval.mean_algorithm_delay_seconds, 2),
                   TablePrinter::num(eval.mean_crowd_delay_seconds, 0),
                   TablePrinter::num(eval.total_spent_cents / 100.0, 2)});
  }

  std::cout << "\n";
  table.print_ascii(std::cout);
  std::cout << "\nExpected shape: CrowdLearn leads on accuracy/F1 at a lower crowd delay\n"
               "than Hybrid-AL (context-aware incentives), with Ensemble cheapest but\n"
               "least accurate on failure-mode images.\n";
  return 0;
}

int main(int argc, char** argv) {
  return crowdlearn::util::run_guarded(run, argc, argv);
}
