// Visualization scenario: dump synthetic disaster scenes and the DDM
// expert's Grad-CAM damage heatmaps as PGM images.
//
// Writes, into the output directory (default "./scenes"):
//   scene_<label>_<i>.pgm          — ordinary scenes per severity class
//   failure_<mode>_<i>.pgm         — the four Figure-1 failure classes
//   gradcam_<label>_<i>.pgm        — DDM's severe-class heatmap per scene
//
// Usage: visualize_scenes [output_dir] [seed]

#include <cstdlib>
#include <fstream>
#include <filesystem>
#include <iostream>

#include "experts/ddm.hpp"
#include "imaging/pgm.hpp"
#include "util/guard.hpp"

static int run(int argc, char** argv) {
  using namespace crowdlearn;
  const std::string out_dir = argc > 1 ? argv[1] : "scenes";
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  std::filesystem::create_directories(out_dir);

  std::cout << "Writing PGM images to " << out_dir << "/ (seed " << seed << ")\n";

  // 1. Ordinary scenes, three per class, upscaled 12x for visibility.
  Rng rng(seed);
  const imaging::RenderOptions opts;
  for (auto severity : {imaging::Severity::kNone, imaging::Severity::kModerate,
                        imaging::Severity::kSevere}) {
    for (int i = 0; i < 3; ++i) {
      const nn::Tensor3 img = imaging::render_scene(severity, opts, rng);
      imaging::write_pgm_file(img,
                              out_dir + "/scene_" + imaging::severity_name(severity) + "_" +
                                  std::to_string(i) + ".pgm",
                              0.0, 1.0, 12);
    }
  }

  // 2. The Figure-1 failure classes.
  for (int i = 0; i < 2; ++i) {
    imaging::write_pgm_file(imaging::render_fake(opts, rng),
                            out_dir + "/failure_fake_" + std::to_string(i) + ".pgm", 0.0,
                            1.0, 12);
    imaging::write_pgm_file(imaging::render_closeup(opts, rng),
                            out_dir + "/failure_close_up_" + std::to_string(i) + ".pgm",
                            0.0, 1.0, 12);
    const nn::Tensor3 sharp = imaging::render_scene(imaging::Severity::kSevere, opts, rng);
    imaging::write_pgm_file(imaging::degrade_low_resolution(sharp, rng),
                            out_dir + "/failure_low_resolution_" + std::to_string(i) +
                                ".pgm",
                            0.0, 1.0, 12);
  }

  // 3. Train a small DDM and export Grad-CAM heatmaps next to their scenes.
  std::cout << "Training a DDM expert for Grad-CAM heatmaps...\n";
  dataset::DatasetConfig dcfg;
  dcfg.total_images = 240;
  dcfg.train_images = 200;
  dcfg.seed = seed;
  const dataset::Dataset data = dataset::generate_dataset(dcfg);
  experts::DdmConfig ddm_cfg;
  ddm_cfg.train.epochs = 10;
  experts::DdmClassifier ddm(ddm_cfg);
  Rng train_rng(mix_seed(seed));
  ddm.train(data, data.train_indices, train_rng);

  int exported = 0;
  for (std::size_t id : data.test_indices) {
    const auto& img = data.image(id);
    if (img.is_failure_case()) continue;
    const std::string label = imaging::severity_name(img.true_label);
    imaging::write_pgm_file(img.pixels,
                            out_dir + "/gradcam_input_" + label + "_" +
                                std::to_string(exported) + ".pgm",
                            0.0, 1.0, 12);
    const nn::Tensor3 cam =
        ddm.damage_heatmap(img, dataset::label_index(dataset::Severity::kSevere));
    std::ofstream os(out_dir + "/gradcam_" + label + "_" + std::to_string(exported) +
                     ".pgm");
    imaging::write_pgm_autoscale(cam, os, 24);  // 8x8 map -> 192px
    if (++exported >= 6) break;
  }

  std::cout << "Done. View with any image viewer, e.g.:\n"
            << "  feh " << out_dir << "/scene_severe_damage_0.pgm\n"
            << "Severe scenes show cracks/debris; fakes sit on unnaturally clean\n"
            << "backgrounds; Grad-CAM maps light up over the damage evidence.\n";
  return 0;
}

int main(int argc, char** argv) {
  return crowdlearn::util::run_guarded(run, argc, argv);
}
