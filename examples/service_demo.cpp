// Multi-tenant service demo (docs/TENANCY.md): one TenantManager hosting K
// independent CrowdLearn scenarios behind the async ServiceQueue, with a
// residency cap forcing checkpoint-backed eviction churn.
//
// Each tenant is a full closed loop (QSS -> IPD -> CQC -> MIC) with its own
// seed, budget and fault profile. Requests arrive in a mixed order — the
// submission loop rotates which tenant goes first each round — so tenants
// constantly page each other in and out through their private generation
// rings under <root>/<tenant>/gen-*.ckpt. Because rehydration restores state
// byte-identically, every tenant's trace matches the same scenario run
// standalone regardless of the eviction schedule or thread count.
//
// Usage: service_demo [seed] [flags]
//   --tenants K       number of tenants (default 4)
//   --cycles N        sensing cycles per tenant (default 4)
//   --max-resident N  residency cap; 0 = unbounded (default 2)
//   --threads N       shared worker-pool size (0 = auto; default 2)
//   --images N        dataset size per tenant (default 120)
//   --root DIR        checkpoint root directory (default service_demo_ckpt)
//   --faults          arm a deployment fault profile on every odd tenant
//   --cache-dir DIR   artifact-cache root (default <root>/_artifacts)
//   --no-cache        disable the shared retrain cache (docs/CACHING.md)

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <iostream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/artifact_cache.hpp"
#include "experts/bovw.hpp"
#include "runtime/exit.hpp"
#include "service/queue.hpp"
#include "service/tenant.hpp"
#include "util/csv.hpp"

namespace {

struct CliOptions {
  std::uint64_t seed = 7;
  std::size_t tenants = 4;
  std::size_t cycles = 4;
  std::size_t max_resident = 2;
  std::size_t threads = 2;
  std::size_t images = 120;
  std::string root = "service_demo_ckpt";
  bool faults = false;
  std::string cache_dir;  // empty = default <root>/_artifacts
  bool no_cache = false;
};

CliOptions parse_cli(int argc, char** argv) {
  CliOptions opt;
  auto value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc)
      throw std::invalid_argument(std::string(flag) + " requires a value");
    return argv[++i];
  };
  auto count = [&](int& i, const char* flag) -> std::size_t {
    return std::strtoull(value(i, flag).c_str(), nullptr, 10);
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--tenants") == 0)
      opt.tenants = count(i, a);
    else if (std::strcmp(a, "--cycles") == 0)
      opt.cycles = count(i, a);
    else if (std::strcmp(a, "--max-resident") == 0)
      opt.max_resident = count(i, a);
    else if (std::strcmp(a, "--threads") == 0)
      opt.threads = count(i, a);
    else if (std::strcmp(a, "--images") == 0)
      opt.images = count(i, a);
    else if (std::strcmp(a, "--root") == 0)
      opt.root = value(i, a);
    else if (std::strcmp(a, "--faults") == 0)
      opt.faults = true;
    else if (std::strcmp(a, "--cache-dir") == 0)
      opt.cache_dir = value(i, a);
    else if (std::strcmp(a, "--no-cache") == 0)
      opt.no_cache = true;
    else if (a[0] == '-')
      throw std::invalid_argument(std::string("unknown flag: ") + a);
    else
      opt.seed = std::strtoull(a, nullptr, 10);
  }
  if (opt.tenants == 0) throw std::invalid_argument("--tenants must be positive");
  if (opt.cycles == 0) throw std::invalid_argument("--cycles must be positive");
  if (opt.images < 40) throw std::invalid_argument("--images must be at least 40");
  if (opt.root.empty()) throw std::invalid_argument("--root must be non-empty");
  if (opt.no_cache && !opt.cache_dir.empty())
    throw std::invalid_argument("--no-cache and --cache-dir are mutually exclusive");
  return opt;
}

crowdlearn::service::TenantSpec make_spec(const CliOptions& opt, std::size_t index) {
  using namespace crowdlearn;
  service::TenantSpec spec;
  spec.name = "tenant-" + std::to_string(index);

  core::ExperimentConfig cfg;
  cfg.seed = opt.seed + 100 * index;
  cfg.dataset.total_images = opt.images;
  cfg.dataset.train_images = opt.images * 3 / 5;
  cfg.dataset.seed = cfg.seed;
  cfg.stream.num_cycles = opt.cycles;
  cfg.stream.images_per_cycle = 6;
  cfg.stream.grouped_contexts = false;
  cfg.pilot.queries_per_cell = 6;
  spec.experiment = cfg;

  spec.queries_per_cycle = 3;
  spec.total_budget_cents = 8.0 * 3.0 * static_cast<double>(opt.cycles);
  if (opt.faults && index % 2 == 1) {
    spec.faults.abandonment_prob = 0.10;
    spec.faults.straggler_prob = 0.10;
    spec.faults.malformed_label_prob = 0.05;
    spec.faults.duplicate_prob = 0.05;
  }
  // A cheap two-expert committee keeps the demo snappy; swap for the full
  // paper roster by leaving committee_factory null.
  spec.committee_factory = [] {
    experts::BovwConfig fast;
    fast.train.epochs = 10;
    fast.train.learning_rate = 0.05;
    std::vector<std::unique_ptr<experts::DdaAlgorithm>> roster;
    roster.push_back(std::make_unique<experts::BovwClassifier>(fast));
    roster.push_back(std::make_unique<experts::BovwClassifier>(fast));
    return experts::ExpertCommittee(std::move(roster));
  };
  return spec;
}

}  // namespace

static int run(int argc, char** argv) {
  using namespace crowdlearn;
  const CliOptions opt = parse_cli(argc, argv);

  std::cout << "CrowdLearn multi-tenant service demo (seed " << opt.seed << ")\n"
            << "  " << opt.tenants << " tenants x " << opt.cycles << " cycles, max "
            << (opt.max_resident == 0 ? std::string("unbounded")
                                      : std::to_string(opt.max_resident))
            << " resident, checkpoint root " << opt.root << "\n\n";

  std::filesystem::remove_all(opt.root);

  service::TenantManagerConfig mgr_cfg;
  mgr_cfg.root_dir = opt.root;
  mgr_cfg.max_resident = opt.max_resident;
  mgr_cfg.max_generations = 2;
  mgr_cfg.num_threads = opt.threads;
  // The shared retrain cache is on by default, rooted next to the rings so
  // a scrubbed demo directory also scrubs its artifacts; --cache-dir moves
  // it somewhere persistent (where a rerun's retrains all hit).
  if (!opt.no_cache)
    mgr_cfg.cache_dir = opt.cache_dir.empty() ? opt.root + "/_artifacts" : opt.cache_dir;
  service::TenantManager manager(mgr_cfg);
  for (std::size_t i = 0; i < opt.tenants; ++i) manager.add_tenant(make_spec(opt, i));

  // Mixed arrival order: round r starts at tenant r % K, so every tenant
  // periodically goes cold and has to be rehydrated past the residency cap.
  service::ServiceQueue queue(manager);
  std::map<std::string, std::vector<std::future<core::CycleOutcome>>> futures;
  for (std::size_t round = 0; round < opt.cycles; ++round) {
    for (std::size_t k = 0; k < opt.tenants; ++k) {
      const std::size_t i = (round + k) % opt.tenants;
      const std::string name = "tenant-" + std::to_string(i);
      futures[name].push_back(queue.submit_cycle(name));
    }
  }
  queue.drain();

  TablePrinter table({"tenant", "phase", "cycles", "cold", "rehydrated", "evicted",
                      "accuracy", "spend(c)"});
  for (std::size_t i = 0; i < opt.tenants; ++i) {
    const std::string name = "tenant-" + std::to_string(i);
    std::size_t correct = 0;
    std::size_t total = 0;
    double spend = 0.0;
    manager.with_resident(name, [&](core::CrowdLearnSystem&, crowd::CrowdPlatform& platform,
                                    const core::ExperimentSetup& setup) {
      spend = platform.total_spent_cents();
      for (std::future<core::CycleOutcome>& f : futures[name]) {
        const core::CycleOutcome out = f.get();
        for (std::size_t j = 0; j < out.image_ids.size(); ++j) {
          total += 1;
          if (out.predictions[j] ==
              dataset::label_index(setup.data.image(out.image_ids[j]).true_label))
            ++correct;
        }
      }
    });
    const service::TenantStats st = manager.stats(name);
    table.add_row({name, service::tenant_phase_name(st.phase),
                   std::to_string(st.cycles_run), std::to_string(st.cold_starts),
                   std::to_string(st.rehydrations), std::to_string(st.evictions),
                   TablePrinter::num(total == 0 ? 0.0
                                                : static_cast<double>(correct) /
                                                      static_cast<double>(total),
                                     2),
                   TablePrinter::num(spend, 0)});
  }
  table.print_ascii(std::cout);

  std::cout << "\nResidency: " << manager.resident_count() << "/" << opt.tenants
            << " tenants in memory, " << manager.total_evictions()
            << " evictions total (rings under " << opt.root << "/<tenant>/)\n";
  if (cache::ArtifactCache* c = manager.artifact_cache()) {
    const cache::CacheStats cs = c->stats();
    std::cout << "Artifact cache: " << cs.hits << " hits / " << cs.misses
              << " misses, " << cs.stores << " stores ("
              << c->config().dir << "; hit==recompute, docs/CACHING.md)\n";
  } else {
    std::cout << "Artifact cache: disabled (--no-cache)\n";
  }
  std::cout
            << "\nEvery tenant's trace above is byte-identical to running it "
               "standalone —\nsee docs/TENANCY.md and tests/test_service.cpp.\n";
  return 0;
}

int main(int argc, char** argv) {
  return crowdlearn::runtime::run_guarded_typed(run, argc, argv);
}
