// Incentive-tuning scenario: what the IPD bandit actually learns.
//
// Runs the pilot study, prints the measured delay surface (context x
// incentive), then replays 200 incentive decisions under three policies —
// UCB-ALP (CrowdLearn's IPD), fixed, and random — under the same budget, and
// reports the per-context incentives chosen and delays achieved.
//
// Usage: incentive_tuning [seed]

#include <cstdlib>
#include <iostream>

#include "core/experiment.hpp"
#include "util/csv.hpp"
#include "util/guard.hpp"

static int run(int argc, char** argv) {
  using namespace crowdlearn;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::cout << "=== Incentive tuning with the IPD bandit (seed " << seed << ") ===\n\n";
  core::ExperimentSetup setup = core::make_default_setup(seed);

  // 1. The pilot-study delay surface (paper Figure 5).
  std::cout << "Pilot-study mean query delay (seconds):\n";
  {
    std::vector<std::string> header{"context"};
    for (double level : crowd::kIncentiveLevels)
      header.push_back(TablePrinter::num(level, 0) + "c");
    TablePrinter table(header);
    for (std::size_t c = 0; c < dataset::kNumContexts; ++c) {
      std::vector<std::string> row{
          dataset::context_name(static_cast<dataset::TemporalContext>(c))};
      for (std::size_t l = 0; l < crowd::kIncentiveLevels.size(); ++l)
        row.push_back(TablePrinter::num(
            setup.pilot.cell(static_cast<dataset::TemporalContext>(c), l).mean_delay, 0));
      table.add_row(std::move(row));
    }
    table.print_ascii(std::cout);
  }

  // 2. Replay 200 queries under each policy with the same $16 budget.
  const double budget_cents = 1600.0;
  const std::size_t horizon = 200;
  dataset::SensingCycleStream stream(setup.data, setup.stream_cfg);

  struct PolicyRun {
    std::string name;
    std::array<double, dataset::kNumContexts> mean_incentive{};
    std::array<double, dataset::kNumContexts> mean_delay{};
    double spend_cents = 0.0;
  };
  std::vector<PolicyRun> results;

  for (int which = 0; which < 3; ++which) {
    core::IpdConfig ipd_cfg;
    ipd_cfg.total_budget_cents = budget_cents;
    ipd_cfg.horizon_queries = horizon;
    ipd_cfg.seed = mix_seed(seed ^ static_cast<std::uint64_t>(which));

    std::unique_ptr<core::Ipd> ipd;
    if (which == 0) {
      ipd = std::make_unique<core::Ipd>(ipd_cfg);
      ipd->warm_start_from_pilot(setup.pilot);
    } else if (which == 1) {
      ipd = std::make_unique<core::Ipd>(
          ipd_cfg, std::make_unique<bandit::FixedIncentivePolicy>(
                       budget_cents / static_cast<double>(horizon)));
    } else {
      ipd = std::make_unique<core::Ipd>(
          ipd_cfg, std::make_unique<bandit::RandomIncentivePolicy>(ipd_cfg.incentive_levels,
                                                                   ipd_cfg.seed));
    }

    crowd::CrowdPlatform platform =
        core::make_platform(setup, 10 + static_cast<std::uint64_t>(which));
    PolicyRun run;
    run.name = ipd->policy().name();

    std::array<double, dataset::kNumContexts> incentive_sum{}, delay_sum{};
    std::array<std::size_t, dataset::kNumContexts> count{};
    std::size_t q = 0;
    Rng pick_rng(mix_seed(seed ^ 0xBEEF));
    while (q < horizon) {
      for (const dataset::SensingCycle& cycle : stream.cycles()) {
        if (q >= horizon) break;
        const auto ctx = static_cast<std::size_t>(cycle.context);
        const double incentive = ipd->assign_incentive(cycle.context);
        const std::size_t image = cycle.image_ids[pick_rng.index(cycle.image_ids.size())];
        const crowd::QueryResponse resp = platform.post_query(image, incentive, cycle.context);
        ipd->feedback(cycle.context, incentive, resp.completion_delay_seconds);
        incentive_sum[ctx] += incentive;
        delay_sum[ctx] += resp.completion_delay_seconds;
        ++count[ctx];
        ++q;
      }
    }
    for (std::size_t c = 0; c < dataset::kNumContexts; ++c) {
      if (count[c] == 0) continue;
      run.mean_incentive[c] = incentive_sum[c] / static_cast<double>(count[c]);
      run.mean_delay[c] = delay_sum[c] / static_cast<double>(count[c]);
    }
    run.spend_cents = platform.total_spent_cents();
    results.push_back(std::move(run));
  }

  std::cout << "\nPolicy comparison over " << horizon << " queries, $"
            << budget_cents / 100.0 << " budget:\n";
  TablePrinter table({"policy", "context", "mean incentive(c)", "mean delay(s)"});
  for (const PolicyRun& run : results)
    for (std::size_t c = 0; c < dataset::kNumContexts; ++c)
      table.add_row({run.name,
                     dataset::context_name(static_cast<dataset::TemporalContext>(c)),
                     TablePrinter::num(run.mean_incentive[c], 1),
                     TablePrinter::num(run.mean_delay[c], 0)});
  table.print_ascii(std::cout);

  for (const PolicyRun& run : results)
    std::cout << run.name << " total spend: " << run.spend_cents / 100.0 << " USD\n";
  std::cout << "\nExpected shape: ucb_alp spends big in the morning/afternoon (where\n"
               "incentives buy speed) and small in the evening/midnight (where they\n"
               "don't), beating both fixed and random at equal budget.\n";
  return 0;
}

int main(int argc, char** argv) {
  return crowdlearn::util::run_guarded(run, argc, argv);
}
